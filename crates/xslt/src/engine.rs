//! The transformation engine: applies a compiled [`Stylesheet`] to a source
//! document, producing a result document.

use crate::compiler::{
    Avt, AvtPart, Instruction, OutputMethod, ParamBinding, SortSpec, Stylesheet, Template,
};
use crate::error::XsltError;
use crate::output;
use std::collections::HashMap;
use up2p_xml::{Context, Document, NodeId, NodeKind, QName, Value, XNode, XPath};

/// Maximum template-application nesting before the engine reports runaway
/// recursion. Kept conservative: each level costs several stack frames and
/// the engine must stay usable on 2 MiB test-thread stacks. Real U-P2P
/// stylesheets nest a handful of levels; source trees deeper than this are
/// pathological.
const MAX_DEPTH: usize = 64;

impl Stylesheet {
    /// Applies the stylesheet to `source`, returning the result tree.
    ///
    /// # Errors
    ///
    /// Returns [`XsltError`] for evaluation failures (unknown variables or
    /// functions, non-node-set `select`s, runaway recursion, ...).
    pub fn apply(&self, source: &Document) -> Result<Document, XsltError> {
        self.apply_with_params(source, &HashMap::new())
    }

    /// Applies the stylesheet with externally supplied global parameters.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Stylesheet::apply`].
    pub fn apply_with_params(
        &self,
        source: &Document,
        params: &HashMap<String, Value>,
    ) -> Result<Document, XsltError> {
        let mut engine = Engine {
            sheet: self,
            src: source,
            out: Document::new(),
            vars: params.clone(),
            depth: 0,
        };
        // global variables, evaluated against the root context
        for g in &self.globals {
            if engine.vars.contains_key(&g.name) {
                continue; // external parameter overrides xsl:param default
            }
            let v = engine.eval_binding(g, XNode::Node(source.root()), 1, 1)?;
            engine.vars.insert(g.name.clone(), v);
        }
        let root = engine.out.root();
        engine.apply_templates_to(
            &[XNode::Node(source.root())],
            None,
            &[],
            root,
        )?;
        Ok(engine.out)
    }

    /// Applies the stylesheet and serializes per its `xsl:output` method.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Stylesheet::apply`].
    pub fn apply_to_string(&self, source: &Document) -> Result<String, XsltError> {
        let doc = self.apply(source)?;
        Ok(match self.output_method() {
            OutputMethod::Xml => doc.to_xml_string(),
            OutputMethod::Html => output::to_html(&doc),
            OutputMethod::Text => doc.text_content(doc.root()),
        })
    }
}

struct Engine<'s, 'd> {
    sheet: &'s Stylesheet,
    src: &'d Document,
    out: Document,
    /// Flat variable map with shadow/restore handled by an undo log at
    /// each scope boundary.
    vars: HashMap<String, Value>,
    depth: usize,
}

/// Undo log entry for variable shadowing.
type Undo = Vec<(String, Option<Value>)>;

impl Engine<'_, '_> {
    fn bind_var(&mut self, undo: &mut Undo, name: &str, value: Value) {
        let old = self.vars.insert(name.to_string(), value);
        undo.push((name.to_string(), old));
    }

    fn unwind(&mut self, undo: Undo) {
        for (name, old) in undo.into_iter().rev() {
            match old {
                Some(v) => {
                    self.vars.insert(name, v);
                }
                None => {
                    self.vars.remove(&name);
                }
            }
        }
    }

    fn ctx<'a>(&'a self, node: XNode, position: usize, size: usize) -> Context<'a> {
        Context { doc: self.src, node, position, size, vars: &self.vars }
    }

    fn eval(&self, xp: &XPath, node: XNode, pos: usize, size: usize) -> Result<Value, XsltError> {
        Ok(xp.eval(&self.ctx(node, pos, size))?)
    }

    fn eval_string(
        &self,
        xp: &XPath,
        node: XNode,
        pos: usize,
        size: usize,
    ) -> Result<String, XsltError> {
        Ok(self.eval(xp, node, pos, size)?.into_string(self.src))
    }

    fn eval_avt(
        &mut self,
        avt: &Avt,
        node: XNode,
        pos: usize,
        size: usize,
    ) -> Result<String, XsltError> {
        let mut out = String::new();
        for part in &avt.parts {
            match part {
                AvtPart::Text(t) => out.push_str(t),
                AvtPart::Expr(xp) => out.push_str(&self.eval_string(xp, node, pos, size)?),
            }
        }
        Ok(out)
    }

    fn eval_binding(
        &mut self,
        binding: &ParamBinding,
        node: XNode,
        pos: usize,
        size: usize,
    ) -> Result<Value, XsltError> {
        match &binding.select {
            Some(xp) => self.eval(xp, node, pos, size),
            None => {
                if binding.body.is_empty() {
                    return Ok(Value::Str(String::new()));
                }
                let s = self.exec_to_string(&binding.body, node, pos, size)?;
                Ok(Value::Str(s))
            }
        }
    }

    /// Executes instructions into a detached fragment and returns its
    /// string value (used for variables-with-body, attribute bodies, ...).
    fn exec_to_string(
        &mut self,
        body: &[Instruction],
        node: XNode,
        pos: usize,
        size: usize,
    ) -> Result<String, XsltError> {
        let frag = self.out.create_element(QName::local_only("fragment"));
        self.exec_all(body, node, pos, size, frag)?;
        Ok(self.out.text_content(frag))
    }

    fn exec_all(
        &mut self,
        body: &[Instruction],
        node: XNode,
        pos: usize,
        size: usize,
        parent: NodeId,
    ) -> Result<(), XsltError> {
        let mut undo = Undo::new();
        for inst in body {
            self.exec(inst, node, pos, size, parent, &mut undo)?;
        }
        self.unwind(undo);
        Ok(())
    }

    fn exec(
        &mut self,
        inst: &Instruction,
        node: XNode,
        pos: usize,
        size: usize,
        parent: NodeId,
        undo: &mut Undo,
    ) -> Result<(), XsltError> {
        match inst {
            Instruction::Text(t) => {
                let id = self.out.create_text(t.clone());
                self.out.append_child(parent, id);
            }
            Instruction::ValueOf(xp) => {
                let s = self.eval_string(xp, node, pos, size)?;
                if !s.is_empty() {
                    let id = self.out.create_text(s);
                    self.out.append_child(parent, id);
                }
            }
            Instruction::LiteralElement { name, attributes, body } => {
                let el = self.out.create_element(name.clone());
                self.out.append_child(parent, el);
                for (aname, avt) in attributes {
                    let v = self.eval_avt(avt, node, pos, size)?;
                    self.out.set_attr(el, aname.clone(), v);
                }
                self.exec_all(body, node, pos, size, el)?;
            }
            Instruction::Element { name, body } => {
                let n = self.eval_avt(name, node, pos, size)?;
                let qname: QName = n
                    .parse()
                    .map_err(|_| XsltError::new(format!("xsl:element produced bad name {n:?}")))?;
                let el = self.out.create_element(qname);
                self.out.append_child(parent, el);
                self.exec_all(body, node, pos, size, el)?;
            }
            Instruction::Attribute { name, body } => {
                if !self.out.is_element(parent) {
                    return Err(XsltError::new(
                        "xsl:attribute outside an element context",
                    ));
                }
                let n = self.eval_avt(name, node, pos, size)?;
                let qname: QName = n.parse().map_err(|_| {
                    XsltError::new(format!("xsl:attribute produced bad name {n:?}"))
                })?;
                let v = self.exec_to_string(body, node, pos, size)?;
                self.out.set_attr(parent, qname, v);
            }
            Instruction::If { test, body } => {
                if self.eval(test, node, pos, size)?.into_bool() {
                    self.exec_all(body, node, pos, size, parent)?;
                }
            }
            Instruction::Choose { whens, otherwise } => {
                for (test, body) in whens {
                    if self.eval(test, node, pos, size)?.into_bool() {
                        return self.exec_all(body, node, pos, size, parent);
                    }
                }
                self.exec_all(otherwise, node, pos, size, parent)?;
            }
            Instruction::ForEach { select, sort, body } => {
                let nodes = self.eval(select, node, pos, size)?.into_nodes()?;
                let nodes = self.sorted(nodes, sort, node, pos, size)?;
                let n = nodes.len();
                for (i, item) in nodes.into_iter().enumerate() {
                    self.exec_all(body, item, i + 1, n, parent)?;
                }
            }
            Instruction::Variable(binding) => {
                let v = self.eval_binding(binding, node, pos, size)?;
                self.bind_var(undo, &binding.name, v);
            }
            Instruction::CopyOf(xp) => match self.eval(xp, node, pos, size)? {
                Value::Nodes(nodes) => {
                    for n in nodes {
                        match n {
                            XNode::Node(id) => {
                                if matches!(self.src.kind(id), NodeKind::Document) {
                                    for &c in self.src.children(id) {
                                        let copy = self.out.import_subtree(self.src, c);
                                        self.out.append_child(parent, copy);
                                    }
                                } else {
                                    let copy = self.out.import_subtree(self.src, id);
                                    self.out.append_child(parent, copy);
                                }
                            }
                            XNode::Attr(owner, idx) => {
                                if let Some(a) = self.src.attributes(owner).get(idx) {
                                    if self.out.is_element(parent) {
                                        self.out.set_attr(
                                            parent,
                                            a.name.clone(),
                                            a.value.clone(),
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
                other => {
                    let s = other.into_string(self.src);
                    if !s.is_empty() {
                        let id = self.out.create_text(s);
                        self.out.append_child(parent, id);
                    }
                }
            },
            Instruction::Copy { body } => match node {
                XNode::Node(id) => match self.src.kind(id).clone() {
                    NodeKind::Element { name, .. } => {
                        let el = self.out.create_element(name);
                        self.out.append_child(parent, el);
                        self.exec_all(body, node, pos, size, el)?;
                    }
                    NodeKind::Text(t) => {
                        let id = self.out.create_text(t);
                        self.out.append_child(parent, id);
                    }
                    NodeKind::Comment(c) => {
                        let id = self.out.create_comment(c);
                        self.out.append_child(parent, id);
                    }
                    NodeKind::Document => {
                        self.exec_all(body, node, pos, size, parent)?;
                    }
                    NodeKind::ProcessingInstruction { target, data } => {
                        let id = self.out.create_pi(target, data);
                        self.out.append_child(parent, id);
                    }
                },
                XNode::Attr(owner, idx) => {
                    if let Some(a) = self.src.attributes(owner).get(idx) {
                        if self.out.is_element(parent) {
                            let (n, v) = (a.name.clone(), a.value.clone());
                            self.out.set_attr(parent, n, v);
                        }
                    }
                }
            },
            Instruction::Comment { body } => {
                let s = self.exec_to_string(body, node, pos, size)?;
                let id = self.out.create_comment(s);
                self.out.append_child(parent, id);
            }
            Instruction::ApplyTemplates { select, mode, params, sort } => {
                let nodes = match select {
                    Some(xp) => self.eval(xp, node, pos, size)?.into_nodes()?,
                    None => match node {
                        XNode::Node(id) => {
                            self.src.children(id).iter().map(|&c| XNode::Node(c)).collect()
                        }
                        XNode::Attr(..) => Vec::new(),
                    },
                };
                let nodes = self.sorted(nodes, sort, node, pos, size)?;
                let bound = self.bind_params(params, node, pos, size)?;
                self.apply_templates_to(&nodes, mode.as_deref(), &bound, parent)?;
            }
            Instruction::CallTemplate { name, params } => {
                let template = self
                    .sheet
                    .templates
                    .iter()
                    .find(|t| t.name.as_deref() == Some(name.as_str()))
                    .ok_or_else(|| XsltError::new(format!("no template named {name:?}")))?;
                let bound = self.bind_params(params, node, pos, size)?;
                self.run_template(template, node, pos, size, &bound, parent)?;
            }
        }
        Ok(())
    }

    fn bind_params(
        &mut self,
        params: &[ParamBinding],
        node: XNode,
        pos: usize,
        size: usize,
    ) -> Result<Vec<(String, Value)>, XsltError> {
        let mut out = Vec::with_capacity(params.len());
        for p in params {
            let v = self.eval_binding(p, node, pos, size)?;
            out.push((p.name.clone(), v));
        }
        Ok(out)
    }

    fn sorted(
        &mut self,
        nodes: Vec<XNode>,
        sorts: &[SortSpec],
        _node: XNode,
        _pos: usize,
        _size: usize,
    ) -> Result<Vec<XNode>, XsltError> {
        if sorts.is_empty() {
            return Ok(nodes);
        }
        // evaluate all keys first (stable sort over precomputed keys)
        let mut keyed: Vec<(Vec<String>, XNode)> = Vec::with_capacity(nodes.len());
        let size = nodes.len();
        for (i, n) in nodes.iter().enumerate() {
            let mut keys = Vec::with_capacity(sorts.len());
            for s in sorts {
                keys.push(self.eval_string(&s.select, *n, i + 1, size)?);
            }
            keyed.push((keys, *n));
        }
        keyed.sort_by(|(ka, _), (kb, _)| {
            for (i, s) in sorts.iter().enumerate() {
                let ord = if s.numeric {
                    let na: f64 = ka[i].trim().parse().unwrap_or(f64::NAN);
                    let nb: f64 = kb[i].trim().parse().unwrap_or(f64::NAN);
                    na.partial_cmp(&nb).unwrap_or(std::cmp::Ordering::Equal)
                } else {
                    ka[i].cmp(&kb[i])
                };
                let ord = if s.descending { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        Ok(keyed.into_iter().map(|(_, n)| n).collect())
    }

    fn apply_templates_to(
        &mut self,
        nodes: &[XNode],
        mode: Option<&str>,
        params: &[(String, Value)],
        parent: NodeId,
    ) -> Result<(), XsltError> {
        let size = nodes.len();
        for (i, &node) in nodes.iter().enumerate() {
            match best_template(self.sheet, self.src, node, mode) {
                Some(t) => {
                    self.run_template(t, node, i + 1, size, params, parent)?;
                }
                None => self.builtin_rule(node, i + 1, size, mode, parent)?,
            }
        }
        Ok(())
    }

    fn run_template(
        &mut self,
        template: &Template,
        node: XNode,
        pos: usize,
        size: usize,
        params: &[(String, Value)],
        parent: NodeId,
    ) -> Result<(), XsltError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            self.depth -= 1;
            return Err(XsltError::new("template recursion too deep"));
        }
        let mut undo = Undo::new();
        // declared params: passed value or default
        for p in &template.params {
            let value = match params.iter().find(|(n, _)| n == &p.name) {
                Some((_, v)) => v.clone(),
                None => self.eval_binding(p, node, pos, size)?,
            };
            self.bind_var(&mut undo, &p.name, value);
        }
        let result = self.exec_all(&template.body, node, pos, size, parent);
        self.unwind(undo);
        self.depth -= 1;
        result
    }

    /// XSLT built-in template rules.
    fn builtin_rule(
        &mut self,
        node: XNode,
        pos: usize,
        size: usize,
        mode: Option<&str>,
        parent: NodeId,
    ) -> Result<(), XsltError> {
        let _ = (pos, size);
        match node {
            XNode::Node(id) => match self.src.kind(id) {
                NodeKind::Document | NodeKind::Element { .. } => {
                    self.depth += 1;
                    if self.depth > MAX_DEPTH {
                        self.depth -= 1;
                        return Err(XsltError::new("template recursion too deep"));
                    }
                    let children: Vec<XNode> =
                        self.src.children(id).iter().map(|&c| XNode::Node(c)).collect();
                    let r = self.apply_templates_to(&children, mode, &[], parent);
                    self.depth -= 1;
                    r
                }
                NodeKind::Text(t) => {
                    let id = self.out.create_text(t.clone());
                    self.out.append_child(parent, id);
                    Ok(())
                }
                _ => Ok(()),
            },
            XNode::Attr(owner, idx) => {
                if let Some(a) = self.src.attributes(owner).get(idx) {
                    let id = self.out.create_text(a.value.clone());
                    self.out.append_child(parent, id);
                }
                Ok(())
            }
        }
    }
}

/// Highest-priority template matching `node` in `mode` (later declaration
/// wins ties). Free function so the template borrow is tied to the
/// stylesheet, not the engine.
fn best_template<'s>(
    sheet: &'s Stylesheet,
    src: &Document,
    node: XNode,
    mode: Option<&str>,
) -> Option<&'s Template> {
    sheet
        .templates
        .iter()
        .filter(|t| t.mode.as_deref() == mode)
        .filter(|t| t.pattern.as_ref().map(|p| p.matches(src, node)).unwrap_or(false))
        .max_by(|a, b| {
            a.priority
                .partial_cmp(&b.priority)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.order.cmp(&b.order))
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transform(xslt: &str, xml: &str) -> String {
        let sheet = Stylesheet::parse(xslt).unwrap();
        let src = Document::parse(xml).unwrap();
        sheet.apply_to_string(&src).unwrap()
    }

    const XSL_NS: &str = r#"xmlns:xsl="http://www.w3.org/1999/XSL/Transform""#;

    #[test]
    fn identity_ish_value_of() {
        let out = transform(
            &format!(
                r#"<xsl:stylesheet {XSL_NS}>
                  <xsl:template match="/">
                    <greeting><xsl:value-of select="/hello"/></greeting>
                  </xsl:template>
                </xsl:stylesheet>"#
            ),
            "<hello>world</hello>",
        );
        assert_eq!(out, "<greeting>world</greeting>");
    }

    #[test]
    fn apply_templates_with_match_rules() {
        let out = transform(
            &format!(
                r#"<xsl:stylesheet {XSL_NS}>
                  <xsl:template match="/"><list><xsl:apply-templates select="//item"/></list></xsl:template>
                  <xsl:template match="item"><li><xsl:value-of select="."/></li></xsl:template>
                </xsl:stylesheet>"#
            ),
            "<items><item>a</item><item>b</item></items>",
        );
        assert_eq!(out, "<list><li>a</li><li>b</li></list>");
    }

    #[test]
    fn builtin_rules_copy_text_through() {
        let out = transform(
            &format!(
                r#"<xsl:stylesheet {XSL_NS}>
                  <xsl:template match="b"><strong><xsl:apply-templates/></strong></xsl:template>
                </xsl:stylesheet>"#
            ),
            "<p>one <b>two</b> three</p>",
        );
        assert_eq!(out, "one <strong>two</strong> three");
    }

    #[test]
    fn for_each_with_position() {
        let out = transform(
            &format!(
                r#"<xsl:stylesheet {XSL_NS}>
                  <xsl:template match="/">
                    <xsl:for-each select="//n"><v p="{{position()}}"><xsl:value-of select="."/></v></xsl:for-each>
                  </xsl:template>
                </xsl:stylesheet>"#
            ),
            "<d><n>x</n><n>y</n></d>",
        );
        assert_eq!(out, r#"<v p="1">x</v><v p="2">y</v>"#);
    }

    #[test]
    fn if_and_choose() {
        let out = transform(
            &format!(
                r#"<xsl:stylesheet {XSL_NS}>
                  <xsl:template match="/">
                    <xsl:for-each select="//n">
                      <xsl:choose>
                        <xsl:when test=". &gt; 10"><big/></xsl:when>
                        <xsl:otherwise><small/></xsl:otherwise>
                      </xsl:choose>
                      <xsl:if test=". = 5"><five/></xsl:if>
                    </xsl:for-each>
                  </xsl:template>
                </xsl:stylesheet>"#
            ),
            "<d><n>5</n><n>20</n></d>",
        );
        assert_eq!(out, "<small/><five/><big/>");
    }

    #[test]
    fn variables_and_params() {
        let out = transform(
            &format!(
                r#"<xsl:stylesheet {XSL_NS}>
                  <xsl:template match="/">
                    <xsl:variable name="greeting" select="'hi'"/>
                    <xsl:call-template name="emit">
                      <xsl:with-param name="text" select="concat($greeting, ' there')"/>
                    </xsl:call-template>
                  </xsl:template>
                  <xsl:template name="emit">
                    <xsl:param name="text" select="'default'"/>
                    <out><xsl:value-of select="$text"/></out>
                  </xsl:template>
                </xsl:stylesheet>"#
            ),
            "<x/>",
        );
        assert_eq!(out, "<out>hi there</out>");
    }

    #[test]
    fn param_default_used_when_not_passed() {
        let out = transform(
            &format!(
                r#"<xsl:stylesheet {XSL_NS}>
                  <xsl:template match="/">
                    <xsl:call-template name="emit"/>
                  </xsl:template>
                  <xsl:template name="emit">
                    <xsl:param name="text" select="'default'"/>
                    <out><xsl:value-of select="$text"/></out>
                  </xsl:template>
                </xsl:stylesheet>"#
            ),
            "<x/>",
        );
        assert_eq!(out, "<out>default</out>");
    }

    #[test]
    fn xsl_element_and_attribute() {
        let out = transform(
            &format!(
                r#"<xsl:stylesheet {XSL_NS}>
                  <xsl:template match="/">
                    <xsl:element name="{{//tag}}">
                      <xsl:attribute name="id">x<xsl:value-of select="//num"/></xsl:attribute>
                      <xsl:text>body</xsl:text>
                    </xsl:element>
                  </xsl:template>
                </xsl:stylesheet>"#
            ),
            "<d><tag>section</tag><num>7</num></d>",
        );
        assert_eq!(out, r#"<section id="x7">body</section>"#);
    }

    #[test]
    fn copy_of_deep_copies() {
        let out = transform(
            &format!(
                r#"<xsl:stylesheet {XSL_NS}>
                  <xsl:template match="/"><wrap><xsl:copy-of select="//keep"/></wrap></xsl:template>
                </xsl:stylesheet>"#
            ),
            "<d><keep a='1'><inner>t</inner></keep><drop/></d>",
        );
        assert_eq!(out, r#"<wrap><keep a="1"><inner>t</inner></keep></wrap>"#);
    }

    #[test]
    fn copy_shallow_with_recursive_identity() {
        // classic identity transform via xsl:copy
        let out = transform(
            &format!(
                r#"<xsl:stylesheet {XSL_NS}>
                  <xsl:template match="@*|node()">
                    <xsl:copy><xsl:apply-templates select="@*|node()"/></xsl:copy>
                  </xsl:template>
                </xsl:stylesheet>"#
            ),
            r#"<a x="1"><b>text</b><!--c--></a>"#,
        );
        assert_eq!(out, r#"<a x="1"><b>text</b><!--c--></a>"#);
    }

    #[test]
    fn modes_select_different_rules() {
        let out = transform(
            &format!(
                r#"<xsl:stylesheet {XSL_NS}>
                  <xsl:template match="/">
                    <xsl:apply-templates select="//x"/>
                    <xsl:apply-templates select="//x" mode="loud"/>
                  </xsl:template>
                  <xsl:template match="x"><quiet/></xsl:template>
                  <xsl:template match="x" mode="loud"><LOUD/></xsl:template>
                </xsl:stylesheet>"#
            ),
            "<d><x/></d>",
        );
        assert_eq!(out, "<quiet/><LOUD/>");
    }

    #[test]
    fn priority_resolves_conflicts() {
        let out = transform(
            &format!(
                r#"<xsl:stylesheet {XSL_NS}>
                  <xsl:template match="/"><xsl:apply-templates select="//b"/></xsl:template>
                  <xsl:template match="*"><star/></xsl:template>
                  <xsl:template match="b"><bee/></xsl:template>
                </xsl:stylesheet>"#
            ),
            "<a><b/></a>",
        );
        assert_eq!(out, "<bee/>"); // name test beats wildcard
    }

    #[test]
    fn sort_ascending_and_numeric() {
        let out = transform(
            &format!(
                r#"<xsl:stylesheet {XSL_NS}>
                  <xsl:template match="/">
                    <xsl:for-each select="//n">
                      <xsl:sort select="." data-type="number"/>
                      <v><xsl:value-of select="."/></v>
                    </xsl:for-each>
                  </xsl:template>
                </xsl:stylesheet>"#
            ),
            "<d><n>10</n><n>2</n><n>33</n></d>",
        );
        assert_eq!(out, "<v>2</v><v>10</v><v>33</v>");
    }

    #[test]
    fn sort_descending_string() {
        let out = transform(
            &format!(
                r#"<xsl:stylesheet {XSL_NS}>
                  <xsl:template match="/">
                    <xsl:for-each select="//n">
                      <xsl:sort select="." order="descending"/>
                      <xsl:value-of select="."/>
                    </xsl:for-each>
                  </xsl:template>
                </xsl:stylesheet>"#
            ),
            "<d><n>apple</n><n>cherry</n><n>banana</n></d>",
        );
        assert_eq!(out, "cherrybananaapple");
    }

    #[test]
    fn global_variables_and_external_params() {
        let sheet = Stylesheet::parse(
            &format!(
                r#"<xsl:stylesheet {XSL_NS}>
                  <xsl:param name="who" select="'nobody'"/>
                  <xsl:template match="/"><p><xsl:value-of select="$who"/></p></xsl:template>
                </xsl:stylesheet>"#
            ),
        )
        .unwrap();
        let src = Document::parse("<x/>").unwrap();
        // default
        assert_eq!(sheet.apply(&src).unwrap().to_xml_string(), "<p>nobody</p>");
        // overridden
        let mut params = HashMap::new();
        params.insert("who".to_string(), Value::Str("alice".to_string()));
        assert_eq!(
            sheet.apply_with_params(&src, &params).unwrap().to_xml_string(),
            "<p>alice</p>"
        );
    }

    #[test]
    fn comment_output() {
        let out = transform(
            &format!(
                r#"<xsl:stylesheet {XSL_NS}>
                  <xsl:template match="/"><r><xsl:comment>gen</xsl:comment></r></xsl:template>
                </xsl:stylesheet>"#
            ),
            "<x/>",
        );
        assert_eq!(out, "<r><!--gen--></r>");
    }

    #[test]
    fn runaway_recursion_is_detected() {
        let sheet = Stylesheet::parse(
            &format!(
                r#"<xsl:stylesheet {XSL_NS}>
                  <xsl:template match="/"><xsl:call-template name="loop"/></xsl:template>
                  <xsl:template name="loop"><xsl:call-template name="loop"/></xsl:template>
                </xsl:stylesheet>"#
            ),
        )
        .unwrap();
        let src = Document::parse("<x/>").unwrap();
        let err = sheet.apply(&src).unwrap_err();
        assert!(err.message().contains("recursion"));
    }

    #[test]
    fn unknown_variable_reported() {
        let sheet = Stylesheet::parse(
            &format!(
                r#"<xsl:stylesheet {XSL_NS}>
                  <xsl:template match="/"><xsl:value-of select="$missing"/></xsl:template>
                </xsl:stylesheet>"#
            ),
        )
        .unwrap();
        let src = Document::parse("<x/>").unwrap();
        assert!(sheet.apply(&src).is_err());
    }

    #[test]
    fn variable_scoping_is_lexical() {
        let out = transform(
            &format!(
                r#"<xsl:stylesheet {XSL_NS}>
                  <xsl:template match="/">
                    <xsl:variable name="v" select="'outer'"/>
                    <xsl:for-each select="//n">
                      <xsl:variable name="v" select="'inner'"/>
                      <a><xsl:value-of select="$v"/></a>
                    </xsl:for-each>
                    <b><xsl:value-of select="$v"/></b>
                  </xsl:template>
                </xsl:stylesheet>"#
            ),
            "<d><n/></d>",
        );
        assert_eq!(out, "<a>inner</a><b>outer</b>");
    }

    #[test]
    fn apply_templates_passes_with_params() {
        let out = transform(
            &format!(
                r#"<xsl:stylesheet {XSL_NS}>
                  <xsl:template match="/">
                    <xsl:apply-templates select="//item">
                      <xsl:with-param name="prefix" select="'#'"/>
                    </xsl:apply-templates>
                  </xsl:template>
                  <xsl:template match="item">
                    <xsl:param name="prefix" select="'?'"/>
                    <v><xsl:value-of select="concat($prefix, .)"/></v>
                  </xsl:template>
                </xsl:stylesheet>"#
            ),
            "<d><item>a</item><item>b</item></d>",
        );
        assert_eq!(out, "<v>#a</v><v>#b</v>");
    }

    #[test]
    fn apply_templates_with_sort() {
        let out = transform(
            &format!(
                r#"<xsl:stylesheet {XSL_NS}>
                  <xsl:template match="/">
                    <xsl:apply-templates select="//n">
                      <xsl:sort select="." data-type="number" order="descending"/>
                    </xsl:apply-templates>
                  </xsl:template>
                  <xsl:template match="n"><v><xsl:value-of select="."/></v></xsl:template>
                </xsl:stylesheet>"#
            ),
            "<d><n>2</n><n>10</n><n>5</n></d>",
        );
        assert_eq!(out, "<v>10</v><v>5</v><v>2</v>");
    }

    #[test]
    fn nested_literal_elements_with_avts_in_nested_scopes() {
        let out = transform(
            &format!(
                r#"<xsl:stylesheet {XSL_NS}>
                  <xsl:template match="/">
                    <table>
                      <xsl:for-each select="//row">
                        <tr id="r{{position()}}">
                          <xsl:for-each select="cell">
                            <td c="{{position()}}"><xsl:value-of select="."/></td>
                          </xsl:for-each>
                        </tr>
                      </xsl:for-each>
                    </table>
                  </xsl:template>
                </xsl:stylesheet>"#
            ),
            "<t><row><cell>a</cell><cell>b</cell></row><row><cell>c</cell></row></t>",
        );
        assert_eq!(
            out,
            r#"<table><tr id="r1"><td c="1">a</td><td c="2">b</td></tr><tr id="r2"><td c="1">c</td></tr></table>"#
        );
    }

    #[test]
    fn text_output_method() {
        let sheet = Stylesheet::parse(
            &format!(
                r#"<xsl:stylesheet {XSL_NS}>
                  <xsl:output method="text"/>
                  <xsl:template match="/">name=<xsl:value-of select="//name"/></xsl:template>
                </xsl:stylesheet>"#
            ),
        )
        .unwrap();
        let src = Document::parse("<o><name>Observer</name></o>").unwrap();
        assert_eq!(sheet.apply_to_string(&src).unwrap(), "name=Observer");
    }
}
