//! XSLT match patterns.
//!
//! A pattern is a restricted XPath (`a/b`, `//c`, `*`, `text()`, `@x`,
//! alternatives with `|`). A node matches when the last step matches the
//! node itself and the preceding steps match its ancestors with the
//! required relationship (`/` = parent, `//` = any ancestor distance).

use crate::error::XsltError;
use up2p_xml::xpath::{Axis, Expr, NodeTest, Path, Step};
use up2p_xml::{Context, Document, Value, XNode, XPath};

/// A compiled match pattern: one or more alternative paths.
#[derive(Debug, Clone, PartialEq)]
pub struct Pattern {
    alternatives: Vec<PatternPath>,
    source: String,
}

#[derive(Debug, Clone, PartialEq)]
struct PatternPath {
    absolute: bool,
    steps: Vec<Step>,
}

impl Pattern {
    /// Compiles a pattern from its textual form.
    ///
    /// # Errors
    ///
    /// Returns [`XsltError`] when the text is not a valid pattern (e.g.
    /// uses functions or arithmetic at the top level).
    pub fn parse(source: &str) -> Result<Pattern, XsltError> {
        let xp = XPath::parse(source)
            .map_err(|e| XsltError::new(format!("invalid pattern {source:?}: {e}")))?;
        let mut alternatives = Vec::new();
        collect_alternatives(xp.expr(), &mut alternatives, source)?;
        Ok(Pattern { alternatives, source: source.to_string() })
    }

    /// The pattern's textual form.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Does `node` match this pattern?
    pub fn matches(&self, doc: &Document, node: XNode) -> bool {
        self.alternatives.iter().any(|p| path_matches(p, doc, node))
    }

    /// XSLT 1.0 default priority of the most specific alternative, used
    /// for conflict resolution between templates.
    pub fn default_priority(&self) -> f64 {
        self.alternatives
            .iter()
            .map(path_priority)
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

fn collect_alternatives(
    expr: &Expr,
    out: &mut Vec<PatternPath>,
    source: &str,
) -> Result<(), XsltError> {
    match expr {
        Expr::Union(a, b) => {
            collect_alternatives(a, out, source)?;
            collect_alternatives(b, out, source)?;
        }
        Expr::Path(Path { absolute, steps }) => {
            out.push(PatternPath { absolute: *absolute, steps: steps.clone() });
        }
        _ => {
            return Err(XsltError::new(format!(
                "pattern {source:?} must be a location path"
            )))
        }
    }
    Ok(())
}

fn path_priority(p: &PatternPath) -> f64 {
    if p.steps.len() != 1 || p.absolute {
        return 0.5;
    }
    match &p.steps[0] {
        Step { test: NodeTest::Name { prefix: None, local }, predicates, .. }
            if predicates.is_empty() && local != "*" =>
        {
            0.0
        }
        Step { test: NodeTest::Wildcard, predicates, .. } if predicates.is_empty() => -0.5,
        Step { test: NodeTest::Text | NodeTest::AnyNode | NodeTest::Comment, predicates, .. }
            if predicates.is_empty() =>
        {
            -0.5
        }
        _ => 0.5,
    }
}

fn path_matches(p: &PatternPath, doc: &Document, node: XNode) -> bool {
    // bare "/" matches the root node
    if p.steps.is_empty() {
        return p.absolute && node == XNode::Node(doc.root());
    }
    match_from(p, p.steps.len() - 1, doc, node)
}

/// Matches steps right-to-left walking ancestors.
fn match_from(p: &PatternPath, idx: usize, doc: &Document, node: XNode) -> bool {
    let step = &p.steps[idx];
    // `//` appears as a DescendantOrSelf+AnyNode step: it matches any
    // ancestor chain, so try the remaining prefix at every ancestor.
    if step.axis == Axis::DescendantOrSelf && step.test == NodeTest::AnyNode {
        if idx == 0 {
            return true; // pattern began with `//`
        }
        let mut cur = Some(node);
        while let Some(n) = cur {
            if match_from(p, idx - 1, doc, n) {
                return true;
            }
            cur = parent_of(doc, n);
        }
        return false;
    }
    if !step_matches_node(doc, node, step) {
        return false;
    }
    if idx == 0 {
        if p.absolute {
            // the first step's parent must be the document root
            return parent_of(doc, node) == Some(XNode::Node(doc.root()));
        }
        return true;
    }
    match parent_of(doc, node) {
        Some(parent) => match_from(p, idx - 1, doc, parent),
        None => false,
    }
}

fn parent_of(doc: &Document, node: XNode) -> Option<XNode> {
    match node {
        XNode::Node(n) => doc.parent(n).map(XNode::Node),
        XNode::Attr(owner, _) => Some(XNode::Node(owner)),
    }
}

fn step_matches_node(doc: &Document, node: XNode, step: &Step) -> bool {
    use up2p_xml::NodeKind;
    // axis determines what kind of node the step can denote in a pattern:
    // child (elements etc.) or attribute
    let kind_ok = match step.axis {
        Axis::Attribute => matches!(node, XNode::Attr(..)),
        Axis::Child | Axis::SelfAxis | Axis::DescendantOrSelf => true,
        _ => false, // other axes are not valid in patterns
    };
    if !kind_ok {
        return false;
    }
    let test_ok = match &step.test {
        NodeTest::AnyNode => !matches!(node, XNode::Node(n) if doc.kind(n) == &NodeKind::Document),
        NodeTest::Text => matches!(node, XNode::Node(n) if doc.is_text(n)),
        NodeTest::Comment => {
            matches!(node, XNode::Node(n) if matches!(doc.kind(n), NodeKind::Comment(_)))
        }
        NodeTest::Wildcard => match (step.axis, node) {
            (Axis::Attribute, XNode::Attr(..)) => true,
            (_, XNode::Node(n)) => doc.is_element(n),
            _ => false,
        },
        NodeTest::Name { local, .. } => {
            let node_local = node.local_name(doc);
            (local == "*" || node_local == *local) && !node_local.is_empty()
        }
    };
    if !test_ok {
        return false;
    }
    // predicates: evaluate with the node as context; positional predicates
    // use the node's position among matching siblings
    if step.predicates.is_empty() {
        return true;
    }
    let vars = std::collections::HashMap::new();
    let (position, size) = sibling_position(doc, node, step);
    for pred in &step.predicates {
        let ctx = Context { doc, node, position, size, vars: &vars };
        let pass = match eval_pred(pred, &ctx) {
            Some(Value::Num(n)) => position as f64 == n,
            Some(v) => v.into_bool(),
            None => false,
        };
        if !pass {
            return false;
        }
    }
    true
}

fn eval_pred(expr: &Expr, ctx: &Context<'_>) -> Option<Value> {
    up2p_xml::xpath::evaluate(expr, ctx).ok()
}

fn sibling_position(doc: &Document, node: XNode, step: &Step) -> (usize, usize) {
    let XNode::Node(n) = node else { return (1, 1) };
    let Some(parent) = doc.parent(n) else { return (1, 1) };
    let matching: Vec<_> = doc
        .children(parent)
        .iter()
        .copied()
        .filter(|&c| {
            let nt = &step.test;
            match nt {
                NodeTest::Name { local, .. } => {
                    doc.local_name(c).map(|l| local == "*" || l == local).unwrap_or(false)
                }
                NodeTest::Wildcard => doc.is_element(c),
                NodeTest::Text => doc.is_text(c),
                _ => true,
            }
        })
        .collect();
    let pos = matching.iter().position(|&c| c == n).map(|i| i + 1).unwrap_or(1);
    (pos, matching.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        Document::parse(
            "<a><b id='1'><c>x</c></b><b id='2'><d>y</d></b><e><c>z</c></e></a>",
        )
        .unwrap()
    }

    fn node(doc: &Document, path: &str) -> XNode {
        let xp = XPath::parse(path).unwrap();
        let nodes = xp.eval_root(doc).unwrap().into_nodes().unwrap();
        nodes[0]
    }

    #[test]
    fn name_pattern_matches_by_name() {
        let d = doc();
        let p = Pattern::parse("b").unwrap();
        assert!(p.matches(&d, node(&d, "//b[1]")));
        assert!(!p.matches(&d, node(&d, "//e")));
    }

    #[test]
    fn path_pattern_requires_parent_chain() {
        let d = doc();
        let p = Pattern::parse("b/c").unwrap();
        assert!(p.matches(&d, node(&d, "/a/b[1]/c")));
        assert!(!p.matches(&d, node(&d, "/a/e/c")));
    }

    #[test]
    fn absolute_pattern_anchors_to_root() {
        let d = doc();
        let p = Pattern::parse("/a/b").unwrap();
        assert!(p.matches(&d, node(&d, "/a/b[1]")));
        let p2 = Pattern::parse("/b").unwrap();
        assert!(!p2.matches(&d, node(&d, "/a/b[1]")));
    }

    #[test]
    fn double_slash_matches_any_depth() {
        let d = doc();
        let p = Pattern::parse("a//c").unwrap();
        assert!(p.matches(&d, node(&d, "/a/b[1]/c")));
        assert!(p.matches(&d, node(&d, "/a/e/c")));
        let p2 = Pattern::parse("//c").unwrap();
        assert!(p2.matches(&d, node(&d, "/a/e/c")));
    }

    #[test]
    fn wildcard_and_text_patterns() {
        let d = doc();
        assert!(Pattern::parse("*").unwrap().matches(&d, node(&d, "//e")));
        assert!(Pattern::parse("text()").unwrap().matches(&d, node(&d, "//c/text()")));
        assert!(!Pattern::parse("text()").unwrap().matches(&d, node(&d, "//e")));
    }

    #[test]
    fn root_pattern() {
        let d = doc();
        let p = Pattern::parse("/").unwrap();
        assert!(p.matches(&d, XNode::Node(d.root())));
        assert!(!p.matches(&d, node(&d, "/a")));
    }

    #[test]
    fn attribute_pattern() {
        let d = doc();
        let p = Pattern::parse("@id").unwrap();
        assert!(p.matches(&d, node(&d, "//b[1]/@id")));
        assert!(!p.matches(&d, node(&d, "//b[1]")));
    }

    #[test]
    fn alternatives() {
        let d = doc();
        let p = Pattern::parse("c | d").unwrap();
        assert!(p.matches(&d, node(&d, "//d")));
        assert!(p.matches(&d, node(&d, "/a/b[1]/c")));
        assert!(!p.matches(&d, node(&d, "//e")));
    }

    #[test]
    fn predicate_on_pattern() {
        let d = doc();
        let p = Pattern::parse("b[@id='2']").unwrap();
        assert!(!p.matches(&d, node(&d, "//b[1]")));
        assert!(p.matches(&d, node(&d, "//b[2]")));
        let pos = Pattern::parse("b[2]").unwrap();
        assert!(pos.matches(&d, node(&d, "//b[2]")));
        assert!(!pos.matches(&d, node(&d, "//b[1]")));
    }

    #[test]
    fn priorities() {
        assert_eq!(Pattern::parse("b").unwrap().default_priority(), 0.0);
        assert_eq!(Pattern::parse("*").unwrap().default_priority(), -0.5);
        assert_eq!(Pattern::parse("text()").unwrap().default_priority(), -0.5);
        assert_eq!(Pattern::parse("a/b").unwrap().default_priority(), 0.5);
        assert_eq!(Pattern::parse("b[@id]").unwrap().default_priority(), 0.5);
    }

    #[test]
    fn non_path_pattern_rejected() {
        assert!(Pattern::parse("1 + 2").is_err());
        assert!(Pattern::parse("concat('a','b')").is_err());
    }
}
