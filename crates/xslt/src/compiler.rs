//! Compilation of `xsl:stylesheet` documents into executable form.
//!
//! Supported instruction set (the subset Xalan-era U-P2P stylesheets use):
//! `template` (match/name/mode/priority), `apply-templates` (select/mode,
//! with-param), `call-template` (with-param), `value-of`, `for-each` (with
//! `sort`), `if`, `choose`/`when`/`otherwise`, `variable`, `param`,
//! `element`, `attribute`, `text`, `copy-of`, `copy`, `comment`, and
//! literal result elements with `{...}` attribute value templates.

use crate::error::XsltError;
use crate::pattern::Pattern;
use up2p_xml::{Document, NodeId, QName, XPath, XSLT_NS};

/// One part of an attribute value template: literal text or an embedded
/// expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AvtPart {
    /// Literal text.
    Text(String),
    /// A `{expr}` segment.
    Expr(XPath),
}

/// A compiled attribute value template (`"item-{position()}"`).
#[derive(Debug, Clone, PartialEq)]
pub struct Avt {
    pub(crate) parts: Vec<AvtPart>,
}

impl Avt {
    /// Compiles an attribute value, treating `{...}` as expressions and
    /// `{{`/`}}` as escapes.
    ///
    /// # Errors
    ///
    /// Returns [`XsltError`] when an embedded expression fails to parse or
    /// a brace is unbalanced.
    pub fn parse(value: &str) -> Result<Avt, XsltError> {
        let mut parts = Vec::new();
        let mut text = String::new();
        let mut chars = value.chars().peekable();
        while let Some(c) = chars.next() {
            match c {
                '{' if chars.peek() == Some(&'{') => {
                    chars.next();
                    text.push('{');
                }
                '}' if chars.peek() == Some(&'}') => {
                    chars.next();
                    text.push('}');
                }
                '{' => {
                    if !text.is_empty() {
                        parts.push(AvtPart::Text(std::mem::take(&mut text)));
                    }
                    let mut expr = String::new();
                    loop {
                        match chars.next() {
                            Some('}') => break,
                            Some(c) => expr.push(c),
                            None => {
                                return Err(XsltError::new(format!(
                                    "unterminated {{ in attribute value template {value:?}"
                                )))
                            }
                        }
                    }
                    let xp = XPath::parse(&expr)
                        .map_err(|e| XsltError::new(format!("in AVT {value:?}: {e}")))?;
                    parts.push(AvtPart::Expr(xp));
                }
                '}' => {
                    return Err(XsltError::new(format!(
                        "unbalanced }} in attribute value template {value:?}"
                    )))
                }
                c => text.push(c),
            }
        }
        if !text.is_empty() {
            parts.push(AvtPart::Text(text));
        }
        Ok(Avt { parts })
    }
}

/// A sort key on `xsl:for-each` / `xsl:apply-templates`.
#[derive(Debug, Clone, PartialEq)]
pub struct SortSpec {
    /// Key expression.
    pub select: XPath,
    /// Descending order when true.
    pub descending: bool,
    /// Compare as numbers when true (`data-type="number"`).
    pub numeric: bool,
}

/// A `xsl:with-param` / `xsl:param` binding.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamBinding {
    /// Parameter name.
    pub name: String,
    /// Value expression (`select`), or `None` when the value comes from
    /// the element body (treated as a string).
    pub select: Option<XPath>,
    /// Body instructions when no `select` is given.
    pub body: Vec<Instruction>,
}

/// Compiled instruction tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Instruction {
    /// Literal text output.
    Text(String),
    /// Literal result element with AVT attributes.
    LiteralElement {
        /// Element name.
        name: QName,
        /// Attribute name → value template.
        attributes: Vec<(QName, Avt)>,
        /// Child instructions.
        body: Vec<Instruction>,
    },
    /// `xsl:value-of select=".."`.
    ValueOf(XPath),
    /// `xsl:apply-templates`.
    ApplyTemplates {
        /// Node selection (default `node()`).
        select: Option<XPath>,
        /// Template mode.
        mode: Option<String>,
        /// Passed parameters.
        params: Vec<ParamBinding>,
        /// Sort keys.
        sort: Vec<SortSpec>,
    },
    /// `xsl:call-template name=".."`.
    CallTemplate {
        /// Callee name.
        name: String,
        /// Passed parameters.
        params: Vec<ParamBinding>,
    },
    /// `xsl:for-each select=".."`.
    ForEach {
        /// Iterated node-set.
        select: XPath,
        /// Sort keys.
        sort: Vec<SortSpec>,
        /// Body instructions.
        body: Vec<Instruction>,
    },
    /// `xsl:if test=".."`.
    If {
        /// Condition.
        test: XPath,
        /// Body when true.
        body: Vec<Instruction>,
    },
    /// `xsl:choose`.
    Choose {
        /// `(test, body)` pairs in order.
        whens: Vec<(XPath, Vec<Instruction>)>,
        /// `xsl:otherwise` body.
        otherwise: Vec<Instruction>,
    },
    /// `xsl:variable`.
    Variable(ParamBinding),
    /// `xsl:element name="{avt}"`.
    Element {
        /// Element name template.
        name: Avt,
        /// Body instructions.
        body: Vec<Instruction>,
    },
    /// `xsl:attribute name="{avt}"`.
    Attribute {
        /// Attribute name template.
        name: Avt,
        /// Body instructions (string value).
        body: Vec<Instruction>,
    },
    /// `xsl:copy-of select=".."` — deep copy of selected nodes.
    CopyOf(XPath),
    /// `xsl:copy` — shallow copy of the context node.
    Copy {
        /// Body instructions executed inside the copy.
        body: Vec<Instruction>,
    },
    /// `xsl:comment`.
    Comment {
        /// Body instructions (string value).
        body: Vec<Instruction>,
    },
}

/// A compiled template rule.
#[derive(Debug, Clone)]
pub struct Template {
    /// Match pattern (`None` for named-only templates).
    pub pattern: Option<Pattern>,
    /// Template name (`None` for match-only templates).
    pub name: Option<String>,
    /// Mode.
    pub mode: Option<String>,
    /// Conflict-resolution priority.
    pub priority: f64,
    /// Declared parameters.
    pub params: Vec<ParamBinding>,
    /// Body instructions.
    pub body: Vec<Instruction>,
    /// Declaration order (later wins among equal priority).
    pub order: usize,
}

/// Output method requested by `xsl:output`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputMethod {
    /// XML serialization (default).
    #[default]
    Xml,
    /// HTML serialization (void elements, no self-closing).
    Html,
    /// Concatenated text.
    Text,
}

/// A compiled stylesheet, ready to be applied to source documents.
#[derive(Debug, Clone)]
pub struct Stylesheet {
    pub(crate) templates: Vec<Template>,
    pub(crate) globals: Vec<ParamBinding>,
    pub(crate) output: OutputMethod,
}

impl Stylesheet {
    /// Compiles a stylesheet from XML text.
    ///
    /// # Errors
    ///
    /// Returns [`XsltError`] for XML syntax errors and unsupported or
    /// malformed XSLT constructs.
    pub fn parse(source: &str) -> Result<Stylesheet, XsltError> {
        let doc = Document::parse(source)?;
        Self::from_document(&doc)
    }

    /// Compiles a stylesheet from a parsed document.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Stylesheet::parse`].
    pub fn from_document(doc: &Document) -> Result<Stylesheet, XsltError> {
        let root = doc
            .document_element()
            .ok_or_else(|| XsltError::new("stylesheet has no root element"))?;
        let root_local = doc.local_name(root).unwrap_or_default();
        if !matches!(root_local, "stylesheet" | "transform") {
            return Err(XsltError::new(format!(
                "root element <{root_local}> is not xsl:stylesheet"
            )));
        }
        let mut templates = Vec::new();
        let mut globals = Vec::new();
        let mut output = OutputMethod::default();
        for child in doc.child_elements(root) {
            if !is_xsl(doc, child) {
                continue;
            }
            match doc.local_name(child) {
                Some("template") => {
                    let order = templates.len();
                    templates.push(compile_template(doc, child, order)?);
                }
                Some("output") => {
                    output = match doc.attr(child, "method") {
                        Some("html") => OutputMethod::Html,
                        Some("text") => OutputMethod::Text,
                        _ => OutputMethod::Xml,
                    };
                }
                Some("variable") | Some("param") => {
                    globals.push(compile_binding(doc, child)?);
                }
                // tolerated no-ops
                Some("strip-space") | Some("preserve-space") | Some("key")
                | Some("decimal-format") | Some("namespace-alias") | Some("import")
                | Some("include") => {}
                Some(other) => {
                    return Err(XsltError::new(format!(
                        "unsupported top-level xsl:{other}"
                    )))
                }
                None => {}
            }
        }
        if templates.is_empty() {
            return Err(XsltError::new("stylesheet has no templates"));
        }
        Ok(Stylesheet { templates, globals, output })
    }

    /// The requested output method.
    pub fn output_method(&self) -> OutputMethod {
        self.output
    }

    /// Number of template rules (for tooling/diagnostics).
    pub fn template_count(&self) -> usize {
        self.templates.len()
    }
}

/// Is `node` an element in the XSLT namespace?
fn is_xsl(doc: &Document, node: NodeId) -> bool {
    doc.is_element(node)
        && (doc.element_namespace(node).as_deref() == Some(XSLT_NS)
            // tolerate the conventional prefix when xmlns:xsl is missing
            || doc.name(node).map(|q| q.prefix() == Some("xsl")).unwrap_or(false))
}

fn compile_template(doc: &Document, node: NodeId, order: usize) -> Result<Template, XsltError> {
    let pattern = match doc.attr(node, "match") {
        Some(m) => Some(Pattern::parse(m)?),
        None => None,
    };
    let name = doc.attr(node, "name").map(str::to_string);
    if pattern.is_none() && name.is_none() {
        return Err(XsltError::new("template needs match or name"));
    }
    let mode = doc.attr(node, "mode").map(str::to_string);
    let priority = match doc.attr(node, "priority") {
        Some(p) => p
            .parse::<f64>()
            .map_err(|_| XsltError::new(format!("invalid priority {p:?}")))?,
        None => pattern.as_ref().map(|p| p.default_priority()).unwrap_or(0.0),
    };
    let mut params = Vec::new();
    let mut body_nodes = Vec::new();
    for child in doc.children(node) {
        if doc.is_element(*child) && is_xsl(doc, *child) && doc.local_name(*child) == Some("param")
        {
            params.push(compile_binding(doc, *child)?);
        } else {
            body_nodes.push(*child);
        }
    }
    let body = compile_body_nodes(doc, &body_nodes)?;
    Ok(Template { pattern, name, mode, priority, params, body, order })
}

fn compile_binding(doc: &Document, node: NodeId) -> Result<ParamBinding, XsltError> {
    let name = doc
        .attr(node, "name")
        .ok_or_else(|| XsltError::new("variable/param without name"))?
        .to_string();
    let select = match doc.attr(node, "select") {
        Some(s) => Some(XPath::parse(s).map_err(XsltError::from)?),
        None => None,
    };
    let body =
        if select.is_none() { compile_body(doc, node)? } else { Vec::new() };
    Ok(ParamBinding { name, select, body })
}

/// Compiles the children of `node` into instructions.
pub(crate) fn compile_body(doc: &Document, node: NodeId) -> Result<Vec<Instruction>, XsltError> {
    let children: Vec<NodeId> = doc.children(node).to_vec();
    compile_body_nodes(doc, &children)
}

fn compile_body_nodes(doc: &Document, nodes: &[NodeId]) -> Result<Vec<Instruction>, XsltError> {
    let mut out = Vec::new();
    for &child in nodes {
        if let Some(text) = doc.text(child) {
            // whitespace-only text in stylesheets is stripped
            if !text.trim().is_empty() {
                out.push(Instruction::Text(text.to_string()));
            }
            continue;
        }
        if !doc.is_element(child) {
            continue; // comments/PIs in stylesheet are ignored
        }
        if is_xsl(doc, child) {
            out.push(compile_xsl_instruction(doc, child)?);
        } else {
            out.push(compile_literal_element(doc, child)?);
        }
    }
    Ok(out)
}

fn attr_xpath(doc: &Document, node: NodeId, name: &str) -> Result<XPath, XsltError> {
    let v = doc.attr(node, name).ok_or_else(|| {
        XsltError::new(format!(
            "xsl:{} missing required attribute {name:?}",
            doc.local_name(node).unwrap_or("?")
        ))
    })?;
    XPath::parse(v).map_err(XsltError::from)
}

fn compile_sorts(doc: &Document, node: NodeId) -> Result<Vec<SortSpec>, XsltError> {
    let mut sorts = Vec::new();
    for child in doc.child_elements(node) {
        if is_xsl(doc, child) && doc.local_name(child) == Some("sort") {
            let select = match doc.attr(child, "select") {
                Some(s) => XPath::parse(s).map_err(XsltError::from)?,
                None => XPath::parse(".").expect("'.' parses"),
            };
            sorts.push(SortSpec {
                select,
                descending: doc.attr(child, "order") == Some("descending"),
                numeric: doc.attr(child, "data-type") == Some("number"),
            });
        }
    }
    Ok(sorts)
}

fn compile_with_params(doc: &Document, node: NodeId) -> Result<Vec<ParamBinding>, XsltError> {
    let mut params = Vec::new();
    for child in doc.child_elements(node) {
        if is_xsl(doc, child) && doc.local_name(child) == Some("with-param") {
            params.push(compile_binding(doc, child)?);
        }
    }
    Ok(params)
}

fn compile_xsl_instruction(doc: &Document, node: NodeId) -> Result<Instruction, XsltError> {
    match doc.local_name(node) {
        Some("value-of") => Ok(Instruction::ValueOf(attr_xpath(doc, node, "select")?)),
        Some("apply-templates") => {
            let select = match doc.attr(node, "select") {
                Some(s) => Some(XPath::parse(s).map_err(XsltError::from)?),
                None => None,
            };
            Ok(Instruction::ApplyTemplates {
                select,
                mode: doc.attr(node, "mode").map(str::to_string),
                params: compile_with_params(doc, node)?,
                sort: compile_sorts(doc, node)?,
            })
        }
        Some("call-template") => Ok(Instruction::CallTemplate {
            name: doc
                .attr(node, "name")
                .ok_or_else(|| XsltError::new("call-template without name"))?
                .to_string(),
            params: compile_with_params(doc, node)?,
        }),
        Some("for-each") => Ok(Instruction::ForEach {
            select: attr_xpath(doc, node, "select")?,
            sort: compile_sorts(doc, node)?,
            body: compile_body_filtered(doc, node, &["sort"])?,
        }),
        Some("if") => Ok(Instruction::If {
            test: attr_xpath(doc, node, "test")?,
            body: compile_body(doc, node)?,
        }),
        Some("choose") => {
            let mut whens = Vec::new();
            let mut otherwise = Vec::new();
            for child in doc.child_elements(node) {
                if !is_xsl(doc, child) {
                    continue;
                }
                match doc.local_name(child) {
                    Some("when") => {
                        whens.push((attr_xpath(doc, child, "test")?, compile_body(doc, child)?))
                    }
                    Some("otherwise") => otherwise = compile_body(doc, child)?,
                    _ => {
                        return Err(XsltError::new("choose may only contain when/otherwise"))
                    }
                }
            }
            if whens.is_empty() {
                return Err(XsltError::new("choose without when"));
            }
            Ok(Instruction::Choose { whens, otherwise })
        }
        Some("variable") | Some("param") => Ok(Instruction::Variable(compile_binding(doc, node)?)),
        Some("element") => Ok(Instruction::Element {
            name: Avt::parse(
                doc.attr(node, "name")
                    .ok_or_else(|| XsltError::new("xsl:element without name"))?,
            )?,
            body: compile_body(doc, node)?,
        }),
        Some("attribute") => Ok(Instruction::Attribute {
            name: Avt::parse(
                doc.attr(node, "name")
                    .ok_or_else(|| XsltError::new("xsl:attribute without name"))?,
            )?,
            body: compile_body(doc, node)?,
        }),
        Some("text") => Ok(Instruction::Text(doc.text_content(node))),
        Some("copy-of") => Ok(Instruction::CopyOf(attr_xpath(doc, node, "select")?)),
        Some("copy") => Ok(Instruction::Copy { body: compile_body(doc, node)? }),
        Some("comment") => Ok(Instruction::Comment { body: compile_body(doc, node)? }),
        Some(other) => Err(XsltError::new(format!("unsupported instruction xsl:{other}"))),
        None => Err(XsltError::new("non-element instruction")),
    }
}

fn compile_body_filtered(
    doc: &Document,
    node: NodeId,
    skip_locals: &[&str],
) -> Result<Vec<Instruction>, XsltError> {
    let children: Vec<NodeId> = doc
        .children(node)
        .iter()
        .copied()
        .filter(|&c| {
            !(doc.is_element(c)
                && is_xsl(doc, c)
                && skip_locals.contains(&doc.local_name(c).unwrap_or("")))
        })
        .collect();
    compile_body_nodes(doc, &children)
}

fn compile_literal_element(doc: &Document, node: NodeId) -> Result<Instruction, XsltError> {
    let name = doc.name(node).expect("literal element has a name").clone();
    let mut attributes = Vec::new();
    for a in doc.attributes(node) {
        // xmlns:xsl on literal elements is stylesheet plumbing, not output
        if a.name.prefix() == Some("xmlns") && a.value == XSLT_NS {
            continue;
        }
        attributes.push((a.name.clone(), Avt::parse(&a.value)?));
    }
    Ok(Instruction::LiteralElement { name, attributes, body: compile_body(doc, node)? })
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"<xsl:stylesheet version="1.0"
        xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
      <xsl:output method="html"/>
      <xsl:template match="/">
        <html><body>
          <h1><xsl:value-of select="//title"/></h1>
          <xsl:apply-templates select="//item"/>
        </body></html>
      </xsl:template>
      <xsl:template match="item">
        <p class="item-{position()}"><xsl:value-of select="."/></p>
      </xsl:template>
    </xsl:stylesheet>"#;

    #[test]
    fn compiles_minimal_stylesheet() {
        let s = Stylesheet::parse(MINIMAL).unwrap();
        assert_eq!(s.template_count(), 2);
        assert_eq!(s.output_method(), OutputMethod::Html);
    }

    #[test]
    fn avt_parsing() {
        let avt = Avt::parse("item-{position()}-x").unwrap();
        assert_eq!(avt.parts.len(), 3);
        assert!(matches!(&avt.parts[0], AvtPart::Text(t) if t == "item-"));
        assert!(matches!(&avt.parts[1], AvtPart::Expr(_)));
        let escaped = Avt::parse("{{literal}}").unwrap();
        assert_eq!(escaped.parts, vec![AvtPart::Text("{literal}".into())]);
        assert!(Avt::parse("{unterminated").is_err());
        assert!(Avt::parse("bad}brace").is_err());
    }

    #[test]
    fn rejects_non_stylesheet() {
        assert!(Stylesheet::parse("<html/>").is_err());
    }

    #[test]
    fn rejects_template_without_match_or_name() {
        let err = Stylesheet::parse(
            r#"<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
              <xsl:template><p/></xsl:template></xsl:stylesheet>"#,
        )
        .unwrap_err();
        assert!(err.message().contains("match or name"));
    }

    #[test]
    fn rejects_unknown_instruction() {
        let err = Stylesheet::parse(
            r#"<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
              <xsl:template match="/"><xsl:frobnicate/></xsl:template>
            </xsl:stylesheet>"#,
        )
        .unwrap_err();
        assert!(err.message().contains("frobnicate"));
    }

    #[test]
    fn template_params_separated_from_body() {
        let s = Stylesheet::parse(
            r#"<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
              <xsl:template name="greet">
                <xsl:param name="who" select="'world'"/>
                <p><xsl:value-of select="$who"/></p>
              </xsl:template>
              <xsl:template match="/"><xsl:call-template name="greet"/></xsl:template>
            </xsl:stylesheet>"#,
        )
        .unwrap();
        let t = s.templates.iter().find(|t| t.name.as_deref() == Some("greet")).unwrap();
        assert_eq!(t.params.len(), 1);
        assert_eq!(t.body.len(), 1);
    }

    #[test]
    fn transform_alias_accepted() {
        let s = Stylesheet::parse(
            r#"<xsl:transform xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
              <xsl:template match="/"><out/></xsl:template>
            </xsl:transform>"#,
        )
        .unwrap();
        assert_eq!(s.template_count(), 1);
    }
}
