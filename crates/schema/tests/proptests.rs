//! Property-based tests: schema round-trips, validator accept/reject
//! invariants, regex engine sanity.

use proptest::prelude::*;
use up2p_schema::{parse_schema_str, FieldKind, Regex, SchemaBuilder, Validator};
use up2p_xml::ElementBuilder;

fn field_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,7}"
}

#[derive(Debug, Clone)]
enum Kind {
    Text,
    Integer,
    Decimal,
    Boolean,
    Uri,
}

fn kind_strategy() -> impl Strategy<Value = Kind> {
    prop_oneof![
        Just(Kind::Text),
        Just(Kind::Integer),
        Just(Kind::Decimal),
        Just(Kind::Boolean),
        Just(Kind::Uri),
    ]
}

/// (schema fields, generator of a valid value per field)
fn fields_strategy() -> impl Strategy<Value = Vec<(String, Kind, bool)>> {
    prop::collection::vec((field_name(), kind_strategy(), any::<bool>()), 1..6).prop_map(
        |mut v| {
            // unique names required for deterministic content models
            v.sort_by(|a, b| a.0.cmp(&b.0));
            v.dedup_by(|a, b| a.0 == b.0);
            v
        },
    )
}

fn build_schema(fields: &[(String, Kind, bool)]) -> up2p_schema::Schema {
    let mut b = SchemaBuilder::new("object");
    for (name, kind, searchable) in fields {
        let mut f = match kind {
            Kind::Text => FieldKind::text(name.clone()),
            Kind::Integer => FieldKind::integer(name.clone()),
            Kind::Decimal => FieldKind::decimal(name.clone()),
            Kind::Boolean => FieldKind::boolean(name.clone()),
            Kind::Uri => FieldKind::uri(name.clone()),
        };
        if *searchable {
            f = f.searchable();
        }
        b.field(f);
    }
    b.build()
}

fn valid_value(kind: &Kind, seed: u64) -> String {
    match kind {
        Kind::Text => format!("text value {seed}"),
        Kind::Integer => format!("{}", seed as i64 - 500),
        Kind::Decimal => format!("{}.5", seed),
        Kind::Boolean => if seed.is_multiple_of(2) { "true" } else { "false" }.to_string(),
        Kind::Uri => format!("http://example.org/{seed}"),
    }
}

proptest! {
    /// Any schema the builder can produce round-trips through XSD text.
    #[test]
    fn builder_schema_round_trips(fields in fields_strategy()) {
        let schema = build_schema(&fields);
        let xsd = up2p_schema::write_schema_string(&schema);
        let reparsed = parse_schema_str(&xsd).unwrap();
        prop_assert_eq!(schema, reparsed);
    }

    /// Instances built field-by-field with valid values always validate.
    #[test]
    fn valid_instances_validate(fields in fields_strategy(), seed in 0u64..10_000) {
        let schema = build_schema(&fields);
        let mut e = ElementBuilder::new("object");
        for (i, (name, kind, _)) in fields.iter().enumerate() {
            e = e.child_text(name.as_str(), valid_value(kind, seed + i as u64));
        }
        let doc = e.build();
        let v = Validator::new(&schema);
        prop_assert!(v.validate(&doc).is_ok(), "doc: {}", doc.to_xml_string());
    }

    /// Dropping a required field always fails validation.
    #[test]
    fn missing_field_fails(fields in fields_strategy(), seed in 0u64..10_000) {
        prop_assume!(fields.len() >= 2);
        let schema = build_schema(&fields);
        let skip = seed as usize % fields.len();
        let mut e = ElementBuilder::new("object");
        for (i, (name, kind, _)) in fields.iter().enumerate() {
            if i == skip { continue; }
            e = e.child_text(name.as_str(), valid_value(kind, seed + i as u64));
        }
        let doc = e.build();
        prop_assert!(Validator::new(&schema).validate(&doc).is_err());
    }

    /// Corrupting a non-text field's value always fails validation.
    #[test]
    fn corrupt_value_fails(fields in fields_strategy(), seed in 0u64..10_000) {
        let Some(victim) = fields.iter().position(|(_, k, _)| matches!(k, Kind::Integer | Kind::Boolean | Kind::Decimal)) else {
            return Ok(()); // nothing corruptible
        };
        let schema = build_schema(&fields);
        let mut e = ElementBuilder::new("object");
        for (i, (name, kind, _)) in fields.iter().enumerate() {
            let value = if i == victim {
                "definitely not a number".to_string()
            } else {
                valid_value(kind, seed + i as u64)
            };
            e = e.child_text(name.as_str(), value);
        }
        let doc = e.build();
        prop_assert!(Validator::new(&schema).validate(&doc).is_err());
    }

    /// A literal alphanumeric pattern matches exactly itself.
    #[test]
    fn regex_literal_self_match(s in "[a-zA-Z0-9]{1,12}") {
        let re = Regex::parse(&s).unwrap();
        prop_assert!(re.is_match(&s));
        let longer = format!("{s}x");
        prop_assert!(!re.is_match(&longer));
        prop_assert!(!re.is_match(&s[1..]));
    }

    /// Repetition counts are honored exactly.
    #[test]
    fn regex_counted_repetition(n in 1usize..8) {
        let re = Regex::parse(&format!("a{{{n}}}")).unwrap();
        prop_assert!(re.is_match(&"a".repeat(n)));
        prop_assert!(!re.is_match(&"a".repeat(n + 1)));
        if n > 1 {
            prop_assert!(!re.is_match(&"a".repeat(n - 1)));
        }
    }

    /// The regex parser never panics on arbitrary input.
    #[test]
    fn regex_parser_never_panics(s in "\\PC{0,30}") {
        let _ = Regex::parse(&s);
    }

    /// Schema text parsing never panics on arbitrary XML-ish input.
    #[test]
    fn schema_parser_never_panics(s in "\\PC{0,120}") {
        let _ = parse_schema_str(&s);
    }
}
