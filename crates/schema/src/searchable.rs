//! Extraction of searchable / indexable fields from a community schema.
//!
//! The paper (§IV-C2) requires schema authors to mark fields as searchable;
//! only those fields appear on generated search forms and in the metadata
//! index. Fig. 3's bootstrap community schema predates the marking
//! convention, so when a schema marks *no* field we default to "all textual
//! leaf fields are searchable" — this keeps the bootstrap community (and
//! other 2002-era schemas) searchable and is recorded as a deviation in
//! DESIGN.md.

use crate::model::{ElementDecl, Particle, Schema, TypeRef};
use crate::types::BuiltinType;
use std::collections::HashSet;

/// A leaf field of a community schema, as used by forms and the index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Slash-separated element path from the root element, e.g.
    /// `community/name`.
    pub path: String,
    /// Leaf element name.
    pub name: String,
    /// Base built-in type of the leaf.
    pub base: BuiltinType,
    /// Allowed values when the leaf is an enumeration, else empty.
    pub enumeration: Vec<String>,
    /// Marked `up2p:searchable`.
    pub searchable: bool,
    /// Marked `up2p:attachment`.
    pub attachment: bool,
    /// `minOccurs == 0`.
    pub optional: bool,
    /// `maxOccurs > 1`.
    pub repeated: bool,
}

/// Collects every simple-typed leaf field of the schema's root element,
/// in document order.
pub fn leaf_fields(schema: &Schema) -> Vec<Field> {
    let mut out = Vec::new();
    if let Some(root) = schema.root_element() {
        let mut visited = HashSet::new();
        walk_decl(schema, root, root.name.clone(), &mut out, &mut visited, 0);
    }
    out
}

/// The fields that should appear on search forms and in the metadata
/// index: those marked searchable, or — when none is marked — every
/// textual leaf.
pub fn searchable_fields(schema: &Schema) -> Vec<Field> {
    let all = leaf_fields(schema);
    let marked: Vec<Field> = all.iter().filter(|f| f.searchable).cloned().collect();
    if !marked.is_empty() {
        return marked;
    }
    all.into_iter().filter(|f| f.base.is_textual()).collect()
}

/// Fields holding attachment URIs (paper §IV-C1: downloaded only when the
/// object is retrieved).
pub fn attachment_fields(schema: &Schema) -> Vec<Field> {
    leaf_fields(schema).into_iter().filter(|f| f.attachment).collect()
}

fn walk_decl(
    schema: &Schema,
    decl: &ElementDecl,
    path: String,
    out: &mut Vec<Field>,
    visited: &mut HashSet<String>,
    depth: usize,
) {
    if depth > 16 {
        return; // recursive schema guard
    }
    let mut push_leaf = |base: BuiltinType, enumeration: Vec<String>| {
        out.push(Field {
            path: path.clone(),
            name: decl.name.clone(),
            base,
            enumeration,
            searchable: decl.searchable,
            attachment: decl.attachment,
            optional: decl.min_occurs == 0,
            repeated: !matches!(decl.max_occurs, crate::model::Occurs::Bounded(0 | 1)),
        })
    };
    match &decl.type_ref {
        TypeRef::Builtin(b) => push_leaf(*b, Vec::new()),
        TypeRef::InlineSimple(st) => push_leaf(st.base, st.facets.enumeration.clone()),
        TypeRef::InlineComplex(ct) => {
            if let Some(p) = &ct.particle {
                walk_particle(schema, p, &path, out, visited, depth);
            }
        }
        TypeRef::Named(name) => {
            if let Some(st) = schema.simple_type(name) {
                push_leaf(st.base, st.facets.enumeration.clone());
            } else if let Some(ct) = schema.complex_type(name) {
                if visited.insert(name.clone()) {
                    if let Some(p) = &ct.particle {
                        walk_particle(schema, p, &path, out, visited, depth);
                    }
                    visited.remove(name);
                }
            }
        }
    }
}

fn walk_particle(
    schema: &Schema,
    particle: &Particle,
    path: &str,
    out: &mut Vec<Field>,
    visited: &mut HashSet<String>,
    depth: usize,
) {
    match particle {
        Particle::Element(d) => {
            walk_decl(schema, d, format!("{path}/{}", d.name), out, visited, depth + 1)
        }
        Particle::Sequence { items, .. } | Particle::Choice { items, .. } => {
            for item in items {
                walk_particle(schema, item, path, out, visited, depth);
            }
        }
        Particle::All { items } => {
            for d in items {
                walk_decl(schema, d, format!("{path}/{}", d.name), out, visited, depth + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_schema_str;

    #[test]
    fn fig3_defaults_to_textual_leaves() {
        let s = parse_schema_str(crate::parser::tests::FIG3).unwrap();
        let leaves = leaf_fields(&s);
        assert_eq!(leaves.len(), 10);
        assert_eq!(leaves[0].path, "community/name");
        let searchable = searchable_fields(&s);
        // anyURI fields are not textual → name, description, keywords,
        // category, security, protocol (protocol is a string enumeration)
        let names: Vec<&str> = searchable.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["name", "description", "keywords", "category", "security", "protocol"]
        );
        let protocol = searchable.iter().find(|f| f.name == "protocol").unwrap();
        assert_eq!(protocol.enumeration.len(), 4);
    }

    #[test]
    fn explicit_markers_win_over_default() {
        let s = parse_schema_str(
            r#"<schema xmlns="http://www.w3.org/2001/XMLSchema"
                       xmlns:up2p="http://up2p.sce.carleton.ca/ns">
              <element name="song"><complexType><sequence>
                <element name="title" type="xsd:string" up2p:searchable="true"/>
                <element name="lyrics" type="xsd:string"/>
                <element name="data" type="xsd:anyURI" up2p:attachment="true"/>
              </sequence></complexType></element></schema>"#,
        )
        .unwrap();
        let searchable = searchable_fields(&s);
        assert_eq!(searchable.len(), 1);
        assert_eq!(searchable[0].name, "title");
        let atts = attachment_fields(&s);
        assert_eq!(atts.len(), 1);
        assert_eq!(atts[0].name, "data");
    }

    #[test]
    fn nested_paths_accumulate() {
        let s = parse_schema_str(
            r#"<schema xmlns="http://www.w3.org/2001/XMLSchema">
              <element name="pattern"><complexType><sequence>
                <element name="name" type="xsd:string"/>
                <element name="solution"><complexType><sequence>
                  <element name="structure" type="xsd:string"/>
                  <element name="participants" type="xsd:string" maxOccurs="unbounded"/>
                </sequence></complexType></element>
              </sequence></complexType></element></schema>"#,
        )
        .unwrap();
        let leaves = leaf_fields(&s);
        let paths: Vec<&str> = leaves.iter().map(|f| f.path.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "pattern/name",
                "pattern/solution/structure",
                "pattern/solution/participants"
            ]
        );
        assert!(leaves[2].repeated);
    }

    #[test]
    fn named_complex_types_resolved() {
        let s = parse_schema_str(
            r#"<schema xmlns="http://www.w3.org/2001/XMLSchema">
              <element name="doc" type="docType"/>
              <complexType name="docType"><sequence>
                <element name="title" type="xsd:string"/>
              </sequence></complexType>
            </schema>"#,
        )
        .unwrap();
        let leaves = leaf_fields(&s);
        assert_eq!(leaves.len(), 1);
        assert_eq!(leaves[0].path, "doc/title");
    }

    #[test]
    fn recursive_schema_terminates() {
        let s = parse_schema_str(
            r#"<schema xmlns="http://www.w3.org/2001/XMLSchema">
              <element name="node" type="nodeType"/>
              <complexType name="nodeType"><sequence>
                <element name="label" type="xsd:string"/>
                <element name="child" type="nodeType" minOccurs="0"/>
              </sequence></complexType>
            </schema>"#,
        )
        .unwrap();
        let leaves = leaf_fields(&s); // must terminate
        assert!(leaves.iter().any(|f| f.path == "node/label"));
    }
}
