//! Parsing XSD documents into the [`Schema`] model.
//!
//! Tolerances matching the paper's usage: schema elements are recognized by
//! local name when their namespace is the XSD namespace *or* unresolvable
//! (Fig. 3 of the paper declares `xmlns="...XMLSchema"` but uses the
//! undeclared `xsd:` prefix in `type` attributes — real-world schemas from
//! 2002 are sloppy, so `xs`/`xsd` prefixes fall back to built-ins).

use crate::error::ParseSchemaError;
use crate::model::{
    AttributeDecl, ComplexType, ElementDecl, Facets, Occurs, Particle, Schema, SimpleTypeDef,
    TypeRef,
};
use crate::regex::Regex;
use crate::types::BuiltinType;
use up2p_xml::{Document, NodeId, XSD_NS};

/// Parses an XSD document into a [`Schema`].
///
/// # Errors
///
/// Returns [`ParseSchemaError`] when the document is not a schema, when
/// declarations are missing required attributes, or when facet values are
/// malformed.
pub fn parse_schema(doc: &Document) -> Result<Schema, ParseSchemaError> {
    let root = doc
        .document_element()
        .ok_or_else(|| ParseSchemaError::new("document has no root element"))?;
    if doc.local_name(root) != Some("schema") {
        return Err(ParseSchemaError::new(format!(
            "root element is <{}>, expected <schema>",
            doc.local_name(root).unwrap_or("?")
        )));
    }
    let mut schema = Schema {
        target_namespace: doc.attr(root, "targetNamespace").map(str::to_string),
        ..Schema::default()
    };
    for child in doc.child_elements(root) {
        match doc.local_name(child) {
            Some("element") => {
                let decl = parse_element_decl(doc, child)?;
                schema.root_elements.push(decl);
            }
            Some("simpleType") => {
                let name = required_attr(doc, child, "name")?;
                let def = parse_simple_type_body(doc, child)?;
                schema.simple_types.insert(name, def);
            }
            Some("complexType") => {
                let name = required_attr(doc, child, "name")?;
                let def = parse_complex_type_body(doc, child)?;
                schema.complex_types.insert(name, def);
            }
            Some("annotation") | Some("import") | Some("include") | None => {}
            Some(other) => {
                return Err(ParseSchemaError::new(format!(
                    "unsupported top-level schema construct <{other}>"
                )))
            }
        }
    }
    if schema.root_elements.is_empty() {
        return Err(ParseSchemaError::new("schema declares no global element"));
    }
    Ok(schema)
}

/// Parses an XSD document from text.
///
/// # Errors
///
/// Returns [`ParseSchemaError`] for XML syntax errors as well as schema
/// construct errors.
pub fn parse_schema_str(xsd: &str) -> Result<Schema, ParseSchemaError> {
    let doc = Document::parse(xsd)
        .map_err(|e| ParseSchemaError::new(format!("invalid schema XML: {e}")))?;
    parse_schema(&doc)
}

fn required_attr(doc: &Document, node: NodeId, name: &str) -> Result<String, ParseSchemaError> {
    doc.attr(node, name).map(str::to_string).ok_or_else(|| {
        ParseSchemaError::new(format!(
            "<{}> missing required attribute {name:?}",
            doc.local_name(node).unwrap_or("?")
        ))
    })
}

fn parse_occurs(
    doc: &Document,
    node: NodeId,
) -> Result<(u32, Occurs), ParseSchemaError> {
    let min = match doc.attr(node, "minOccurs") {
        None => 1,
        Some(v) => v
            .parse::<u32>()
            .map_err(|_| ParseSchemaError::new(format!("invalid minOccurs {v:?}")))?,
    };
    let max = match doc.attr(node, "maxOccurs") {
        None => Occurs::Bounded(1),
        Some("unbounded") => Occurs::Unbounded,
        Some(v) => Occurs::Bounded(
            v.parse::<u32>()
                .map_err(|_| ParseSchemaError::new(format!("invalid maxOccurs {v:?}")))?,
        ),
    };
    if let Occurs::Bounded(m) = max {
        if m < min {
            return Err(ParseSchemaError::new(format!(
                "maxOccurs {m} below minOccurs {min}"
            )));
        }
    }
    Ok((min, max))
}

fn bool_attr(doc: &Document, node: NodeId, local: &str) -> bool {
    doc.attributes(node)
        .iter()
        .any(|a| a.name.local() == local && matches!(a.value.as_str(), "true" | "1"))
}

/// `type="xsd:string"` / `type="protocolTypes"` resolution.
fn resolve_type_name(
    doc: &Document,
    node: NodeId,
    value: &str,
) -> Result<TypeRef, ParseSchemaError> {
    let (prefix, local) = match value.split_once(':') {
        Some((p, l)) => (Some(p), l),
        None => (None, value),
    };
    if let Some(p) = prefix {
        let is_xsd = doc.namespace_uri(node, Some(p)).as_deref() == Some(XSD_NS)
            || matches!(p, "xs" | "xsd");
        if is_xsd {
            return BuiltinType::from_name(local)
                .map(TypeRef::Builtin)
                .ok_or_else(|| {
                    ParseSchemaError::new(format!("unknown built-in type {value:?}"))
                });
        }
        return Ok(TypeRef::Named(local.to_string()));
    }
    // Unprefixed names: built-in when the name is one (Fig. 3 writes
    // base="string" under a default XSD namespace), otherwise a reference
    // to a schema-local named type (Fig. 3's type="protocolTypes").
    if let Some(b) = BuiltinType::from_name(local) {
        return Ok(TypeRef::Builtin(b));
    }
    Ok(TypeRef::Named(local.to_string()))
}

fn parse_element_decl(doc: &Document, node: NodeId) -> Result<ElementDecl, ParseSchemaError> {
    let name = required_attr(doc, node, "name")?;
    let (min_occurs, max_occurs) = parse_occurs(doc, node)?;
    let searchable = bool_attr(doc, node, "searchable") || has_appinfo(doc, node, "searchable");
    let attachment = bool_attr(doc, node, "attachment") || has_appinfo(doc, node, "attachment");

    let type_ref = if let Some(t) = doc.attr(node, "type") {
        resolve_type_name(doc, node, t)?
    } else if let Some(ct) = doc.child_named(node, "complexType") {
        TypeRef::InlineComplex(Box::new(parse_complex_type_body(doc, ct)?))
    } else if let Some(st) = doc.child_named(node, "simpleType") {
        TypeRef::InlineSimple(Box::new(parse_simple_type_body(doc, st)?))
    } else {
        // elements with neither type nor inline definition: xsd:string
        TypeRef::Builtin(BuiltinType::String)
    };

    Ok(ElementDecl { name, type_ref, min_occurs, max_occurs, searchable, attachment })
}

fn has_appinfo(doc: &Document, node: NodeId, marker: &str) -> bool {
    doc.children_named(node, "annotation").any(|ann| {
        doc.children_named(ann, "appinfo")
            .any(|ai| doc.text_content(ai).split_whitespace().any(|w| w == marker))
    })
}

fn parse_complex_type_body(
    doc: &Document,
    node: NodeId,
) -> Result<ComplexType, ParseSchemaError> {
    let mut ct = ComplexType { mixed: bool_attr(doc, node, "mixed"), ..ComplexType::default() };
    for child in doc.child_elements(node) {
        match doc.local_name(child) {
            Some("sequence") | Some("choice") => {
                ct.particle = Some(parse_group(doc, child)?);
            }
            Some("all") => {
                let mut items = Vec::new();
                for el in doc.children_named(child, "element") {
                    items.push(parse_element_decl(doc, el)?);
                }
                ct.particle = Some(Particle::All { items });
            }
            Some("attribute") => {
                ct.attributes.push(parse_attribute_decl(doc, child)?);
            }
            Some("annotation") | None => {}
            Some(other) => {
                return Err(ParseSchemaError::new(format!(
                    "unsupported complexType construct <{other}>"
                )))
            }
        }
    }
    Ok(ct)
}

fn parse_group(doc: &Document, node: NodeId) -> Result<Particle, ParseSchemaError> {
    let (min_occurs, max_occurs) = parse_occurs(doc, node)?;
    let mut items = Vec::new();
    for child in doc.child_elements(node) {
        match doc.local_name(child) {
            Some("element") => items.push(Particle::Element(parse_element_decl(doc, child)?)),
            Some("sequence") | Some("choice") => items.push(parse_group(doc, child)?),
            Some("annotation") | None => {}
            Some(other) => {
                return Err(ParseSchemaError::new(format!(
                    "unsupported group construct <{other}>"
                )))
            }
        }
    }
    Ok(match doc.local_name(node) {
        Some("sequence") => Particle::Sequence { items, min_occurs, max_occurs },
        _ => Particle::Choice { items, min_occurs, max_occurs },
    })
}

fn parse_attribute_decl(
    doc: &Document,
    node: NodeId,
) -> Result<AttributeDecl, ParseSchemaError> {
    let name = required_attr(doc, node, "name")?;
    let required = doc.attr(node, "use") == Some("required");
    let simple_type = if let Some(t) = doc.attr(node, "type") {
        match resolve_type_name(doc, node, t)? {
            TypeRef::Builtin(b) => SimpleTypeDef::plain(b),
            TypeRef::Named(n) => {
                // attribute types must be simple; resolved lazily at
                // validation would complicate things — inline a string
                // fallback with the name noted
                return Err(ParseSchemaError::new(format!(
                    "attribute {name:?} references named type {n:?}; only built-in attribute types are supported"
                )));
            }
            _ => unreachable!("resolve_type_name never returns inline types"),
        }
    } else if let Some(st) = doc.child_named(node, "simpleType") {
        parse_simple_type_body(doc, st)?
    } else {
        SimpleTypeDef::plain(BuiltinType::String)
    };
    Ok(AttributeDecl { name, simple_type, required })
}

fn parse_simple_type_body(
    doc: &Document,
    node: NodeId,
) -> Result<SimpleTypeDef, ParseSchemaError> {
    let restriction = doc
        .child_named(node, "restriction")
        .ok_or_else(|| ParseSchemaError::new("simpleType without <restriction>"))?;
    let base_name = required_attr(doc, restriction, "base")?;
    let base = match resolve_type_name(doc, restriction, &base_name)? {
        TypeRef::Builtin(b) => b,
        TypeRef::Named(n) => BuiltinType::from_name(&n).ok_or_else(|| {
            ParseSchemaError::new(format!("restriction base {n:?} is not a built-in type"))
        })?,
        _ => unreachable!("resolve_type_name never returns inline types"),
    };
    let mut facets = Facets::default();
    for facet in doc.child_elements(restriction) {
        let value = doc.attr(facet, "value").unwrap_or_default().to_string();
        match doc.local_name(facet) {
            Some("enumeration") => facets.enumeration.push(value),
            Some("pattern") => {
                facets.pattern = Some(Regex::parse(&value).map_err(|e| {
                    ParseSchemaError::new(format!("invalid pattern facet: {e}"))
                })?)
            }
            Some("length") => facets.length = Some(parse_usize(&value)?),
            Some("minLength") => facets.min_length = Some(parse_usize(&value)?),
            Some("maxLength") => facets.max_length = Some(parse_usize(&value)?),
            Some("minInclusive") => facets.min_inclusive = Some(parse_f64(&value)?),
            Some("maxInclusive") => facets.max_inclusive = Some(parse_f64(&value)?),
            Some("minExclusive") => facets.min_exclusive = Some(parse_f64(&value)?),
            Some("maxExclusive") => facets.max_exclusive = Some(parse_f64(&value)?),
            Some("annotation") | None => {}
            Some(other) => {
                return Err(ParseSchemaError::new(format!("unsupported facet <{other}>")))
            }
        }
    }
    Ok(SimpleTypeDef { base, facets })
}

fn parse_usize(v: &str) -> Result<usize, ParseSchemaError> {
    v.parse().map_err(|_| ParseSchemaError::new(format!("invalid length facet {v:?}")))
}

fn parse_f64(v: &str) -> Result<f64, ParseSchemaError> {
    v.parse().map_err(|_| ParseSchemaError::new(format!("invalid numeric facet {v:?}")))
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// The community schema of Fig. 3, verbatim from the paper.
    pub const FIG3: &str = r#"<?xml version="1.0"?>
<schema xmlns="http://www.w3.org/2001/XMLSchema">
 <element name="community">
  <complexType>
   <sequence>
    <element name="name" type="xsd:string"/>
    <element name="description" type="xsd:string"/>
    <element name="keywords" type="xsd:string"/>
    <element name="category" type="xsd:string"/>
    <element name="security" type="xsd:string"/>
    <element name="protocol" type="protocolTypes"/>
    <element name="schema" type="xsd:anyURI"/>
    <element name="displaystyle" type="xsd:anyURI"/>
    <element name="createstyle" type="xsd:anyURI"/>
    <element name="searchstyle" type="xsd:anyURI"/>
   </sequence>
  </complexType>
 </element>
 <simpleType name="protocolTypes">
  <restriction base="string">
   <enumeration value=""/>
   <enumeration value="Napster"/>
   <enumeration value="Gnutella"/>
   <enumeration value="FastTrack"/>
  </restriction>
 </simpleType>
</schema>"#;

    #[test]
    fn parses_fig3_community_schema() {
        let s = parse_schema_str(FIG3).unwrap();
        let root = s.root_element().unwrap();
        assert_eq!(root.name, "community");
        let TypeRef::InlineComplex(ct) = &root.type_ref else {
            panic!("expected inline complex type")
        };
        let decls = ct.particle.as_ref().unwrap().element_decls();
        assert_eq!(decls.len(), 10);
        assert_eq!(decls[0].name, "name");
        assert_eq!(decls[5].name, "protocol");
        assert!(matches!(decls[5].type_ref, TypeRef::Named(ref n) if n == "protocolTypes"));
        assert!(matches!(decls[6].type_ref, TypeRef::Builtin(BuiltinType::AnyUri)));
        let proto = s.simple_type("protocolTypes").unwrap();
        assert_eq!(proto.base, BuiltinType::String);
        assert_eq!(
            proto.facets.enumeration,
            vec!["", "Napster", "Gnutella", "FastTrack"]
        );
    }

    #[test]
    fn occurs_bounds_parse() {
        let s = parse_schema_str(
            r#"<schema xmlns="http://www.w3.org/2001/XMLSchema">
              <element name="list">
                <complexType><sequence>
                  <element name="item" type="xsd:string" minOccurs="0" maxOccurs="unbounded"/>
                  <element name="tail" type="xsd:string" minOccurs="2" maxOccurs="3"/>
                </sequence></complexType>
              </element>
            </schema>"#,
        )
        .unwrap();
        let root = s.root_element().unwrap();
        let TypeRef::InlineComplex(ct) = &root.type_ref else { panic!() };
        let decls = ct.particle.as_ref().unwrap().element_decls();
        assert_eq!(decls[0].min_occurs, 0);
        assert_eq!(decls[0].max_occurs, Occurs::Unbounded);
        assert_eq!(decls[1].min_occurs, 2);
        assert_eq!(decls[1].max_occurs, Occurs::Bounded(3));
    }

    #[test]
    fn searchable_markers_via_attribute_and_appinfo() {
        let s = parse_schema_str(
            r#"<schema xmlns="http://www.w3.org/2001/XMLSchema"
                      xmlns:up2p="http://up2p.sce.carleton.ca/ns">
              <element name="song">
                <complexType><sequence>
                  <element name="title" type="xsd:string" up2p:searchable="true"/>
                  <element name="artist" type="xsd:string">
                    <annotation><appinfo>searchable</appinfo></annotation>
                  </element>
                  <element name="data" type="xsd:anyURI" up2p:attachment="true"/>
                </sequence></complexType>
              </element>
            </schema>"#,
        )
        .unwrap();
        let TypeRef::InlineComplex(ct) = &s.root_element().unwrap().type_ref else { panic!() };
        let decls = ct.particle.as_ref().unwrap().element_decls();
        assert!(decls[0].searchable);
        assert!(decls[1].searchable);
        assert!(!decls[2].searchable);
        assert!(decls[2].attachment);
    }

    #[test]
    fn nested_choice_inside_sequence() {
        let s = parse_schema_str(
            r#"<schema xmlns="http://www.w3.org/2001/XMLSchema">
              <element name="media">
                <complexType><sequence>
                  <element name="title" type="xsd:string"/>
                  <choice>
                    <element name="audio" type="xsd:anyURI"/>
                    <element name="video" type="xsd:anyURI"/>
                  </choice>
                </sequence></complexType>
              </element>
            </schema>"#,
        )
        .unwrap();
        let TypeRef::InlineComplex(ct) = &s.root_element().unwrap().type_ref else { panic!() };
        let Particle::Sequence { items, .. } = ct.particle.as_ref().unwrap() else { panic!() };
        assert_eq!(items.len(), 2);
        assert!(matches!(items[1], Particle::Choice { .. }));
    }

    #[test]
    fn xs_all_group() {
        let s = parse_schema_str(
            r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
              <xs:element name="card">
                <xs:complexType><xs:all>
                  <xs:element name="front" type="xs:string"/>
                  <xs:element name="back" type="xs:string"/>
                </xs:all></xs:complexType>
              </xs:element>
            </xs:schema>"#,
        )
        .unwrap();
        let TypeRef::InlineComplex(ct) = &s.root_element().unwrap().type_ref else { panic!() };
        assert!(matches!(ct.particle.as_ref().unwrap(), Particle::All { items } if items.len() == 2));
    }

    #[test]
    fn attributes_with_use_required() {
        let s = parse_schema_str(
            r#"<schema xmlns="http://www.w3.org/2001/XMLSchema">
              <element name="pattern">
                <complexType>
                  <sequence><element name="name" type="xsd:string"/></sequence>
                  <attribute name="lang" type="xsd:string" use="required"/>
                  <attribute name="version" type="xsd:integer"/>
                </complexType>
              </element>
            </schema>"#,
        )
        .unwrap();
        let TypeRef::InlineComplex(ct) = &s.root_element().unwrap().type_ref else { panic!() };
        assert_eq!(ct.attributes.len(), 2);
        assert!(ct.attributes[0].required);
        assert!(!ct.attributes[1].required);
        assert_eq!(ct.attributes[1].simple_type.base, BuiltinType::Integer);
    }

    #[test]
    fn errors_on_non_schema_document() {
        assert!(parse_schema_str("<community/>").is_err());
    }

    #[test]
    fn errors_on_missing_name() {
        let e = parse_schema_str(
            r#"<schema xmlns="http://www.w3.org/2001/XMLSchema"><element type="xsd:string"/></schema>"#,
        )
        .unwrap_err();
        assert!(e.message().contains("name"));
    }

    #[test]
    fn errors_on_unknown_builtin() {
        let e = parse_schema_str(
            r#"<schema xmlns="http://www.w3.org/2001/XMLSchema">
               <element name="x" type="xsd:frobnicate"/></schema>"#,
        )
        .unwrap_err();
        assert!(e.message().contains("frobnicate"));
    }

    #[test]
    fn errors_on_empty_schema() {
        assert!(parse_schema_str(r#"<schema xmlns="http://www.w3.org/2001/XMLSchema"/>"#).is_err());
    }

    #[test]
    fn errors_on_bad_occurs() {
        let e = parse_schema_str(
            r#"<schema xmlns="http://www.w3.org/2001/XMLSchema">
              <element name="l"><complexType><sequence>
                <element name="i" type="xsd:string" minOccurs="3" maxOccurs="2"/>
              </sequence></complexType></element></schema>"#,
        )
        .unwrap_err();
        assert!(e.message().contains("maxOccurs"));
    }

    #[test]
    fn untyped_element_defaults_to_string() {
        let s = parse_schema_str(
            r#"<schema xmlns="http://www.w3.org/2001/XMLSchema"><element name="note"/></schema>"#,
        )
        .unwrap();
        assert!(matches!(
            s.root_element().unwrap().type_ref,
            TypeRef::Builtin(BuiltinType::String)
        ));
    }

    #[test]
    fn facets_parse() {
        let s = parse_schema_str(
            r#"<schema xmlns="http://www.w3.org/2001/XMLSchema">
              <element name="x" type="year"/>
              <simpleType name="year">
                <restriction base="integer">
                  <minInclusive value="1970"/>
                  <maxInclusive value="2030"/>
                  <pattern value="\d{4}"/>
                </restriction>
              </simpleType>
            </schema>"#,
        )
        .unwrap();
        let t = s.simple_type("year").unwrap();
        assert_eq!(t.facets.min_inclusive, Some(1970.0));
        assert_eq!(t.facets.max_inclusive, Some(2030.0));
        assert!(t.facets.pattern.is_some());
        assert!(t.check("2002").is_ok());
        assert!(t.check("1802").is_err());
    }
}
