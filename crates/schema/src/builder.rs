//! Programmatic schema construction — the "web-based tool for generating
//! XML Schema" from the paper's conclusion, as an API.
//!
//! Community designers with domain knowledge but no XSD expertise describe
//! their object's fields; the builder emits a valid community [`Schema`]
//! with searchable/attachment markers in place.
//!
//! ```
//! use up2p_schema::{SchemaBuilder, FieldKind};
//!
//! let schema = SchemaBuilder::new("song")
//!     .field(FieldKind::text("title").searchable())
//!     .field(FieldKind::text("artist").searchable())
//!     .field(FieldKind::enumeration("genre", ["rock", "jazz", "folk"]).searchable())
//!     .field(FieldKind::integer("year").optional())
//!     .field(FieldKind::uri("audio").attachment())
//!     .build();
//! assert_eq!(schema.root_element().unwrap().name, "song");
//! ```

use crate::model::{
    ComplexType, ElementDecl, Facets, Occurs, Particle, Schema, SimpleTypeDef, TypeRef,
};
use crate::types::BuiltinType;

/// Specification of a single field, built with the `FieldKind::*`
/// constructors and chainable modifiers.
#[derive(Debug, Clone)]
pub struct FieldKind {
    name: String,
    body: FieldBody,
    min: u32,
    max: Occurs,
    searchable: bool,
    attachment: bool,
}

#[derive(Debug, Clone)]
enum FieldBody {
    Simple(SimpleTypeDef),
    Nested(Vec<FieldKind>),
}

impl FieldKind {
    fn simple(name: impl Into<String>, st: SimpleTypeDef) -> Self {
        FieldKind {
            name: name.into(),
            body: FieldBody::Simple(st),
            min: 1,
            max: Occurs::Bounded(1),
            searchable: false,
            attachment: false,
        }
    }

    /// A free-text field (`xsd:string`).
    pub fn text(name: impl Into<String>) -> Self {
        Self::simple(name, SimpleTypeDef::plain(BuiltinType::String))
    }

    /// An integer field.
    pub fn integer(name: impl Into<String>) -> Self {
        Self::simple(name, SimpleTypeDef::plain(BuiltinType::Integer))
    }

    /// A decimal field.
    pub fn decimal(name: impl Into<String>) -> Self {
        Self::simple(name, SimpleTypeDef::plain(BuiltinType::Decimal))
    }

    /// A boolean field.
    pub fn boolean(name: impl Into<String>) -> Self {
        Self::simple(name, SimpleTypeDef::plain(BuiltinType::Boolean))
    }

    /// A URI field (`xsd:anyURI`).
    pub fn uri(name: impl Into<String>) -> Self {
        Self::simple(name, SimpleTypeDef::plain(BuiltinType::AnyUri))
    }

    /// A date field (`YYYY-MM-DD`).
    pub fn date(name: impl Into<String>) -> Self {
        Self::simple(name, SimpleTypeDef::plain(BuiltinType::Date))
    }

    /// A closed-vocabulary field (string restricted by enumeration).
    pub fn enumeration<I, S>(name: impl Into<String>, values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self::simple(
            name,
            SimpleTypeDef {
                base: BuiltinType::String,
                facets: Facets {
                    enumeration: values.into_iter().map(Into::into).collect(),
                    ..Facets::default()
                },
            },
        )
    }

    /// A nested group of sub-fields (inline complex type).
    pub fn nested<I: IntoIterator<Item = FieldKind>>(
        name: impl Into<String>,
        fields: I,
    ) -> Self {
        FieldKind {
            name: name.into(),
            body: FieldBody::Nested(fields.into_iter().collect()),
            min: 1,
            max: Occurs::Bounded(1),
            searchable: false,
            attachment: false,
        }
    }

    /// Marks the field searchable (`up2p:searchable`).
    pub fn searchable(mut self) -> Self {
        self.searchable = true;
        self
    }

    /// Marks the field as an attachment URI (`up2p:attachment`).
    pub fn attachment(mut self) -> Self {
        self.attachment = true;
        self
    }

    /// Allows the field to be absent (`minOccurs="0"`).
    pub fn optional(mut self) -> Self {
        self.min = 0;
        self
    }

    /// Allows the field to repeat (`maxOccurs="unbounded"`).
    pub fn repeated(mut self) -> Self {
        self.max = Occurs::Unbounded;
        self
    }

    fn into_decl(self) -> ElementDecl {
        let type_ref = match self.body {
            FieldBody::Simple(st) => {
                if st.facets.is_empty() {
                    TypeRef::Builtin(st.base)
                } else {
                    TypeRef::InlineSimple(Box::new(st))
                }
            }
            FieldBody::Nested(fields) => TypeRef::InlineComplex(Box::new(ComplexType {
                particle: Some(Particle::Sequence {
                    items: fields
                        .into_iter()
                        .map(|f| Particle::Element(f.into_decl()))
                        .collect(),
                    min_occurs: 1,
                    max_occurs: Occurs::Bounded(1),
                }),
                attributes: Vec::new(),
                mixed: false,
            })),
        };
        ElementDecl {
            name: self.name,
            type_ref,
            min_occurs: self.min,
            max_occurs: self.max,
            searchable: self.searchable,
            attachment: self.attachment,
        }
    }
}

/// Non-consuming builder assembling a flat (or nested) community schema.
#[derive(Debug, Clone)]
pub struct SchemaBuilder {
    root_name: String,
    fields: Vec<FieldKind>,
}

impl SchemaBuilder {
    /// Starts a schema whose instances use `root_name` as document
    /// element.
    pub fn new(root_name: impl Into<String>) -> Self {
        SchemaBuilder { root_name: root_name.into(), fields: Vec::new() }
    }

    /// Adds a field (order is the instance document order).
    pub fn field(&mut self, field: FieldKind) -> &mut Self {
        self.fields.push(field);
        self
    }

    /// Builds the [`Schema`].
    pub fn build(&self) -> Schema {
        let items = self
            .fields
            .iter()
            .cloned()
            .map(|f| Particle::Element(f.into_decl()))
            .collect();
        let root = ElementDecl {
            name: self.root_name.clone(),
            type_ref: TypeRef::InlineComplex(Box::new(ComplexType {
                particle: Some(Particle::Sequence {
                    items,
                    min_occurs: 1,
                    max_occurs: Occurs::Bounded(1),
                }),
                attributes: Vec::new(),
                mixed: false,
            })),
            min_occurs: 1,
            max_occurs: Occurs::Bounded(1),
            searchable: false,
            attachment: false,
        };
        Schema { root_elements: vec![root], ..Schema::default() }
    }

    /// Builds and serializes to XSD text in one step.
    pub fn to_xsd(&self) -> String {
        crate::writer::write_schema_string(&self.build())
    }
}

// `field` takes &mut self for ergonomic loops; allow one-liner chains too.
impl Extend<FieldKind> for SchemaBuilder {
    fn extend<T: IntoIterator<Item = FieldKind>>(&mut self, iter: T) {
        self.fields.extend(iter);
    }
}

impl FieldKind {
    /// The field's name (exposed for tooling that lists fields).
    pub fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_schema_str;
    use crate::searchable::searchable_fields;
    use crate::validator::Validator;
    use up2p_xml::Document;

    #[test]
    fn built_schema_validates_instances() {
        let mut b = SchemaBuilder::new("song");
        b.field(FieldKind::text("title").searchable())
            .field(FieldKind::text("artist").searchable())
            .field(FieldKind::integer("year").optional())
            .field(FieldKind::uri("audio").attachment());
        let schema = b.build();
        let v = Validator::new(&schema);
        let ok = Document::parse(
            "<song><title>So What</title><artist>Miles Davis</artist>\
             <year>1959</year><audio>file://kind-of-blue/1</audio></song>",
        )
        .unwrap();
        assert!(v.validate(&ok).is_ok());
        let bad = Document::parse(
            "<song><title>So What</title><artist>Miles Davis</artist>\
             <year>nineteen</year><audio>file://x</audio></song>",
        )
        .unwrap();
        assert!(v.validate(&bad).is_err());
    }

    #[test]
    fn built_schema_round_trips_through_xsd_text() {
        let mut b = SchemaBuilder::new("molecule");
        b.field(FieldKind::text("formula").searchable())
            .field(FieldKind::enumeration("phase", ["solid", "liquid", "gas"]))
            .field(FieldKind::decimal("weight").optional())
            .field(FieldKind::nested(
                "bonds",
                [FieldKind::text("bond").repeated().optional()],
            ));
        let schema = b.build();
        let reparsed = parse_schema_str(&b.to_xsd()).unwrap();
        assert_eq!(schema, reparsed);
    }

    #[test]
    fn searchable_markers_flow_through() {
        let mut b = SchemaBuilder::new("gene");
        b.field(FieldKind::text("symbol").searchable())
            .field(FieldKind::text("sequence"));
        let schema = b.build();
        let fields = searchable_fields(&schema);
        assert_eq!(fields.len(), 1);
        assert_eq!(fields[0].path, "gene/symbol");
    }

    #[test]
    fn enumeration_restricts_values() {
        let mut b = SchemaBuilder::new("x");
        b.field(FieldKind::enumeration("protocol", ["Napster", "Gnutella"]));
        let schema = b.build();
        let v = Validator::new(&schema);
        assert!(v
            .validate(&Document::parse("<x><protocol>Napster</protocol></x>").unwrap())
            .is_ok());
        assert!(v
            .validate(&Document::parse("<x><protocol>Kazaa</protocol></x>").unwrap())
            .is_err());
    }

    #[test]
    fn repeated_optional_fields() {
        let mut b = SchemaBuilder::new("doc");
        b.field(FieldKind::text("tag").optional().repeated());
        let schema = b.build();
        let v = Validator::new(&schema);
        assert!(v.validate(&Document::parse("<doc/>").unwrap()).is_ok());
        assert!(v
            .validate(&Document::parse("<doc><tag>a</tag><tag>b</tag><tag>c</tag></doc>").unwrap())
            .is_ok());
    }
}
