//! Validation of instance documents against a [`Schema`].
//!
//! The matcher is deterministic-greedy, which is sufficient for schemas
//! obeying XSD's Unique Particle Attribution rule (all U-P2P community
//! schemas do): at every point the next child element name selects at most
//! one particle.

use crate::error::{ValidationError, ValidationErrorKind};
use crate::model::{ComplexType, ElementDecl, Particle, Schema, SimpleTypeDef, TypeRef};
use crate::types::BuiltinType;
use up2p_xml::{Document, NodeId};

/// Validates instance documents against one schema.
///
/// ```
/// use up2p_schema::{parse_schema_str, Validator};
/// use up2p_xml::Document;
///
/// let schema = parse_schema_str(r#"
///   <schema xmlns="http://www.w3.org/2001/XMLSchema">
///     <element name="note"><complexType><sequence>
///       <element name="to" type="xsd:string"/>
///     </sequence></complexType></element>
///   </schema>"#)?;
/// let validator = Validator::new(&schema);
/// let ok = Document::parse("<note><to>peer</to></note>").unwrap();
/// assert!(validator.validate(&ok).is_ok());
/// let bad = Document::parse("<note><from>peer</from></note>").unwrap();
/// assert!(validator.validate(&bad).is_err());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Validator<'s> {
    schema: &'s Schema,
}

impl<'s> Validator<'s> {
    /// Creates a validator over `schema`.
    pub fn new(schema: &'s Schema) -> Self {
        Validator { schema }
    }

    /// Validates a whole document; collects *all* problems rather than
    /// stopping at the first.
    ///
    /// # Errors
    ///
    /// Returns every [`ValidationError`] found.
    pub fn validate(&self, doc: &Document) -> Result<(), Vec<ValidationError>> {
        let mut errors = Vec::new();
        let Some(root) = doc.document_element() else {
            errors.push(ValidationError {
                path: String::new(),
                kind: ValidationErrorKind::UnknownRootElement("(none)".into()),
            });
            return Err(errors);
        };
        let root_name = doc.local_name(root).unwrap_or_default();
        match self.schema.root_element_named(root_name) {
            Some(decl) => {
                self.validate_element(doc, root, decl, root_name, &mut errors);
            }
            None => errors.push(ValidationError {
                path: root_name.to_string(),
                kind: ValidationErrorKind::UnknownRootElement(root_name.to_string()),
            }),
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    /// Validates a single element against its declaration.
    fn validate_element(
        &self,
        doc: &Document,
        node: NodeId,
        decl: &ElementDecl,
        path: &str,
        errors: &mut Vec<ValidationError>,
    ) {
        match &decl.type_ref {
            TypeRef::Builtin(b) => {
                self.validate_simple(doc, node, &SimpleTypeDef::plain(*b), path, errors)
            }
            TypeRef::InlineSimple(st) => self.validate_simple(doc, node, st, path, errors),
            TypeRef::InlineComplex(ct) => self.validate_complex(doc, node, ct, path, errors),
            TypeRef::Named(name) => {
                if let Some(st) = self.schema.simple_type(name) {
                    self.validate_simple(doc, node, st, path, errors);
                } else if let Some(ct) = self.schema.complex_type(name) {
                    self.validate_complex(doc, node, ct, path, errors);
                } else {
                    errors.push(ValidationError {
                        path: path.to_string(),
                        kind: ValidationErrorKind::UnknownType(name.clone()),
                    });
                }
            }
        }
    }

    fn validate_simple(
        &self,
        doc: &Document,
        node: NodeId,
        st: &SimpleTypeDef,
        path: &str,
        errors: &mut Vec<ValidationError>,
    ) {
        if let Some(child) = doc.child_elements(node).next() {
            errors.push(ValidationError {
                path: path.to_string(),
                kind: ValidationErrorKind::UnexpectedElement(
                    doc.local_name(child).unwrap_or("?").to_string(),
                ),
            });
            return;
        }
        let raw = doc.text_content(node);
        // non-string types tolerate surrounding whitespace (XSD whiteSpace
        // collapse); strings are taken verbatim
        let value: &str =
            if st.base.is_textual() && st.base != BuiltinType::Token { &raw } else { raw.trim() };
        if let Err(facet) = st.check(value) {
            let kind = if facet.starts_with("xsd:") {
                ValidationErrorKind::InvalidValue { value: value.to_string(), expected: facet }
            } else {
                ValidationErrorKind::FacetViolation { value: value.to_string(), facet }
            };
            errors.push(ValidationError { path: path.to_string(), kind });
        }
    }

    fn validate_complex(
        &self,
        doc: &Document,
        node: NodeId,
        ct: &ComplexType,
        path: &str,
        errors: &mut Vec<ValidationError>,
    ) {
        // attributes
        for ad in &ct.attributes {
            match doc.attr(node, &ad.name) {
                Some(v) => {
                    if let Err(facet) = ad.simple_type.check(v) {
                        errors.push(ValidationError {
                            path: format!("{path}/@{}", ad.name),
                            kind: ValidationErrorKind::FacetViolation {
                                value: v.to_string(),
                                facet,
                            },
                        });
                    }
                }
                None if ad.required => errors.push(ValidationError {
                    path: path.to_string(),
                    kind: ValidationErrorKind::MissingAttribute(ad.name.clone()),
                }),
                None => {}
            }
        }
        for attr in doc.attributes(node) {
            let name = attr.name.local();
            let declared = ct.attributes.iter().any(|a| a.name == name);
            let is_ns = attr.name.prefix() == Some("xmlns") || attr.name.is_unprefixed("xmlns");
            // prefixed attributes (up2p:searchable, xsi:...) are extensions
            let is_ext = attr.name.prefix().is_some();
            if !declared && !is_ns && !is_ext {
                errors.push(ValidationError {
                    path: path.to_string(),
                    kind: ValidationErrorKind::UnexpectedAttribute(name.to_string()),
                });
            }
        }
        // character content
        if !ct.mixed {
            let has_nonspace_text = doc
                .children(node)
                .iter()
                .filter_map(|&c| doc.text(c))
                .any(|t| !t.trim().is_empty());
            if has_nonspace_text && ct.particle.is_some() {
                errors.push(ValidationError {
                    path: path.to_string(),
                    kind: ValidationErrorKind::ContentModel(
                        "character data not allowed in element-only content".to_string(),
                    ),
                });
            }
        }
        // children vs particle
        let children: Vec<NodeId> = doc.child_elements(node).collect();
        match &ct.particle {
            None => {
                if let Some(&first) = children.first() {
                    errors.push(ValidationError {
                        path: path.to_string(),
                        kind: ValidationErrorKind::UnexpectedElement(
                            doc.local_name(first).unwrap_or("?").to_string(),
                        ),
                    });
                }
            }
            Some(p) => {
                let mut pos = 0usize;
                if let Err(e) = self.match_particle(doc, &children, &mut pos, p, path, errors) {
                    errors.push(e);
                } else if pos < children.len() {
                    errors.push(ValidationError {
                        path: path.to_string(),
                        kind: ValidationErrorKind::UnexpectedElement(
                            doc.local_name(children[pos]).unwrap_or("?").to_string(),
                        ),
                    });
                }
            }
        }
    }

    /// Greedy deterministic particle matcher. Consumes children from
    /// `pos`; descends into matched elements to validate them.
    fn match_particle(
        &self,
        doc: &Document,
        children: &[NodeId],
        pos: &mut usize,
        particle: &Particle,
        path: &str,
        errors: &mut Vec<ValidationError>,
    ) -> Result<(), ValidationError> {
        match particle {
            Particle::Element(decl) => {
                let mut count = 0u32;
                while *pos < children.len()
                    && doc.local_name(children[*pos]) == Some(decl.name.as_str())
                    && decl.max_occurs.allows(count + 1)
                {
                    let child_path = format!("{path}/{}", decl.name);
                    self.validate_element(doc, children[*pos], decl, &child_path, errors);
                    *pos += 1;
                    count += 1;
                }
                if count < decl.min_occurs {
                    return Err(ValidationError {
                        path: path.to_string(),
                        kind: ValidationErrorKind::MissingElement(decl.name.clone()),
                    });
                }
                Ok(())
            }
            Particle::Sequence { items, min_occurs, max_occurs } => {
                let mut reps = 0u32;
                loop {
                    if !max_occurs.allows(reps + 1) {
                        break;
                    }
                    let starts_here = *pos < children.len()
                        && first_set_contains(
                            particle,
                            doc.local_name(children[*pos]).unwrap_or(""),
                        );
                    if reps >= *min_occurs && !starts_here {
                        break;
                    }
                    let before = *pos;
                    for item in items {
                        self.match_particle(doc, children, pos, item, path, errors)?;
                    }
                    reps += 1;
                    if *pos == before {
                        break; // zero-width iteration; required count met
                    }
                }
                if reps < *min_occurs {
                    return Err(ValidationError {
                        path: path.to_string(),
                        kind: ValidationErrorKind::ContentModel(format!(
                            "sequence group occurs {reps} time(s), needs {min_occurs}"
                        )),
                    });
                }
                Ok(())
            }
            Particle::Choice { items, min_occurs, max_occurs } => {
                let mut reps = 0u32;
                loop {
                    if !max_occurs.allows(reps + 1) {
                        break;
                    }
                    let current = match children.get(*pos) {
                        Some(&c) => doc.local_name(c).unwrap_or("").to_string(),
                        None => break,
                    };
                    let Some(branch) =
                        items.iter().find(|it| first_set_contains(it, &current))
                    else {
                        break;
                    };
                    let before = *pos;
                    self.match_particle(doc, children, pos, branch, path, errors)?;
                    reps += 1;
                    if *pos == before {
                        break;
                    }
                }
                if reps < *min_occurs {
                    return Err(ValidationError {
                        path: path.to_string(),
                        kind: ValidationErrorKind::ContentModel(format!(
                            "choice group occurs {reps} time(s), needs {min_occurs}"
                        )),
                    });
                }
                Ok(())
            }
            Particle::All { items } => {
                let mut used = vec![false; items.len()];
                while *pos < children.len() {
                    let name = doc.local_name(children[*pos]).unwrap_or("");
                    let Some(i) = items
                        .iter()
                        .position(|d| d.name == name)
                        .filter(|&i| !used[i])
                    else {
                        break;
                    };
                    used[i] = true;
                    let child_path = format!("{path}/{name}");
                    self.validate_element(doc, children[*pos], &items[i], &child_path, errors);
                    *pos += 1;
                }
                for (i, d) in items.iter().enumerate() {
                    if d.min_occurs > 0 && !used[i] {
                        return Err(ValidationError {
                            path: path.to_string(),
                            kind: ValidationErrorKind::MissingElement(d.name.clone()),
                        });
                    }
                }
                Ok(())
            }
        }
    }
}

/// Can `name` be the first element matched by `particle`?
fn first_set_contains(particle: &Particle, name: &str) -> bool {
    match particle {
        Particle::Element(d) => d.name == name,
        Particle::Sequence { items, .. } => {
            for item in items {
                if first_set_contains(item, name) {
                    return true;
                }
                if !nullable(item) {
                    return false;
                }
            }
            false
        }
        Particle::Choice { items, .. } => items.iter().any(|i| first_set_contains(i, name)),
        Particle::All { items } => items.iter().any(|d| d.name == name),
    }
}

/// Can `particle` match the empty sequence?
fn nullable(particle: &Particle) -> bool {
    match particle {
        Particle::Element(d) => d.min_occurs == 0,
        Particle::Sequence { items, min_occurs, .. } => {
            *min_occurs == 0 || items.iter().all(nullable)
        }
        Particle::Choice { items, min_occurs, .. } => {
            *min_occurs == 0 || items.iter().any(nullable)
        }
        Particle::All { items } => items.iter().all(|d| d.min_occurs == 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_schema_str;

    const FIG3: &str = crate::parser::tests::FIG3;

    fn community_instance(protocol: &str) -> String {
        format!(
            "<community><name>mp3</name><description>MP3 trading</description>\
             <keywords>music audio</keywords><category>music</category>\
             <security>none</security><protocol>{protocol}</protocol>\
             <schema>http://x/mp3.xsd</schema><displaystyle>http://x/d.xsl</displaystyle>\
             <createstyle>http://x/c.xsl</createstyle><searchstyle>http://x/s.xsl</searchstyle>\
             </community>"
        )
    }

    #[test]
    fn fig3_accepts_valid_community() {
        let s = parse_schema_str(FIG3).unwrap();
        let v = Validator::new(&s);
        for proto in ["", "Napster", "Gnutella", "FastTrack"] {
            let doc = Document::parse(&community_instance(proto)).unwrap();
            assert!(v.validate(&doc).is_ok(), "protocol {proto:?} should validate");
        }
    }

    #[test]
    fn fig3_rejects_unknown_protocol() {
        let s = parse_schema_str(FIG3).unwrap();
        let v = Validator::new(&s);
        let doc = Document::parse(&community_instance("Kazaa")).unwrap();
        let errs = v.validate(&doc).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].to_string().contains("enumeration"), "{}", errs[0]);
        assert_eq!(errs[0].path, "community/protocol");
    }

    #[test]
    fn fig3_rejects_missing_field() {
        let s = parse_schema_str(FIG3).unwrap();
        let v = Validator::new(&s);
        let doc = Document::parse(
            "<community><name>mp3</name><description>d</description></community>",
        )
        .unwrap();
        let errs = v.validate(&doc).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(&e.kind, ValidationErrorKind::MissingElement(n) if n == "keywords")));
    }

    #[test]
    fn fig3_rejects_out_of_order_fields() {
        let s = parse_schema_str(FIG3).unwrap();
        let v = Validator::new(&s);
        // description before name violates the sequence
        let doc = Document::parse(
            "<community><description>d</description><name>mp3</name></community>",
        )
        .unwrap();
        assert!(v.validate(&doc).is_err());
    }

    #[test]
    fn unknown_root_element() {
        let s = parse_schema_str(FIG3).unwrap();
        let v = Validator::new(&s);
        let doc = Document::parse("<nonsense/>").unwrap();
        let errs = v.validate(&doc).unwrap_err();
        assert!(matches!(errs[0].kind, ValidationErrorKind::UnknownRootElement(_)));
    }

    #[test]
    fn repeated_elements_respect_occurs() {
        let s = parse_schema_str(
            r#"<schema xmlns="http://www.w3.org/2001/XMLSchema">
              <element name="list"><complexType><sequence>
                <element name="item" type="xsd:string" minOccurs="1" maxOccurs="3"/>
              </sequence></complexType></element></schema>"#,
        )
        .unwrap();
        let v = Validator::new(&s);
        let ok = Document::parse("<list><item>a</item><item>b</item></list>").unwrap();
        assert!(v.validate(&ok).is_ok());
        let too_many =
            Document::parse("<list><item>a</item><item>b</item><item>c</item><item>d</item></list>")
                .unwrap();
        assert!(v.validate(&too_many).is_err());
        let none = Document::parse("<list/>").unwrap();
        assert!(v.validate(&none).is_err());
    }

    #[test]
    fn choice_accepts_either_branch() {
        let s = parse_schema_str(
            r#"<schema xmlns="http://www.w3.org/2001/XMLSchema">
              <element name="media"><complexType><sequence>
                <element name="title" type="xsd:string"/>
                <choice>
                  <element name="audio" type="xsd:anyURI"/>
                  <element name="video" type="xsd:anyURI"/>
                </choice>
              </sequence></complexType></element></schema>"#,
        )
        .unwrap();
        let v = Validator::new(&s);
        for kind in ["audio", "video"] {
            let doc = Document::parse(&format!(
                "<media><title>t</title><{kind}>u</{kind}></media>"
            ))
            .unwrap();
            assert!(v.validate(&doc).is_ok(), "{kind} branch");
        }
        let both =
            Document::parse("<media><title>t</title><audio>u</audio><video>u</video></media>")
                .unwrap();
        assert!(v.validate(&both).is_err(), "choice allows only one branch");
        let neither = Document::parse("<media><title>t</title></media>").unwrap();
        assert!(v.validate(&neither).is_err());
    }

    #[test]
    fn all_group_accepts_any_order() {
        let s = parse_schema_str(
            r#"<schema xmlns="http://www.w3.org/2001/XMLSchema">
              <element name="card"><complexType><all>
                <element name="front" type="xsd:string"/>
                <element name="back" type="xsd:string"/>
              </all></complexType></element></schema>"#,
        )
        .unwrap();
        let v = Validator::new(&s);
        for src in [
            "<card><front>f</front><back>b</back></card>",
            "<card><back>b</back><front>f</front></card>",
        ] {
            let doc = Document::parse(src).unwrap();
            assert!(v.validate(&doc).is_ok(), "{src}");
        }
        let dup = Document::parse("<card><front>f</front><front>g</front></card>").unwrap();
        assert!(v.validate(&dup).is_err());
        let missing = Document::parse("<card><front>f</front></card>").unwrap();
        assert!(v.validate(&missing).is_err());
    }

    #[test]
    fn integer_type_checked() {
        let s = parse_schema_str(
            r#"<schema xmlns="http://www.w3.org/2001/XMLSchema">
              <element name="n" type="xsd:integer"/></schema>"#,
        )
        .unwrap();
        let v = Validator::new(&s);
        assert!(v.validate(&Document::parse("<n>42</n>").unwrap()).is_ok());
        assert!(v.validate(&Document::parse("<n> 42 </n>").unwrap()).is_ok());
        let errs = v.validate(&Document::parse("<n>forty-two</n>").unwrap()).unwrap_err();
        assert!(matches!(errs[0].kind, ValidationErrorKind::InvalidValue { .. }));
    }

    #[test]
    fn required_attribute_enforced() {
        let s = parse_schema_str(
            r#"<schema xmlns="http://www.w3.org/2001/XMLSchema">
              <element name="p"><complexType>
                <sequence><element name="x" type="xsd:string"/></sequence>
                <attribute name="lang" type="xsd:string" use="required"/>
              </complexType></element></schema>"#,
        )
        .unwrap();
        let v = Validator::new(&s);
        assert!(v.validate(&Document::parse("<p lang='en'><x>a</x></p>").unwrap()).is_ok());
        let errs = v.validate(&Document::parse("<p><x>a</x></p>").unwrap()).unwrap_err();
        assert!(matches!(&errs[0].kind, ValidationErrorKind::MissingAttribute(a) if a == "lang"));
    }

    #[test]
    fn undeclared_attribute_reported_but_namespaced_ignored() {
        let s = parse_schema_str(
            r#"<schema xmlns="http://www.w3.org/2001/XMLSchema">
              <element name="p"><complexType>
                <sequence><element name="x" type="xsd:string"/></sequence>
              </complexType></element></schema>"#,
        )
        .unwrap();
        let v = Validator::new(&s);
        let errs =
            v.validate(&Document::parse("<p bogus='1'><x>a</x></p>").unwrap()).unwrap_err();
        assert!(matches!(&errs[0].kind, ValidationErrorKind::UnexpectedAttribute(a) if a == "bogus"));
        assert!(v
            .validate(
                &Document::parse(
                    "<p xmlns:up2p='http://up2p.sce.carleton.ca/ns' up2p:x='1'><x>a</x></p>"
                )
                .unwrap()
            )
            .is_ok());
    }

    #[test]
    fn text_in_element_only_content_rejected() {
        let s = parse_schema_str(
            r#"<schema xmlns="http://www.w3.org/2001/XMLSchema">
              <element name="p"><complexType>
                <sequence><element name="x" type="xsd:string"/></sequence>
              </complexType></element></schema>"#,
        )
        .unwrap();
        let v = Validator::new(&s);
        let errs =
            v.validate(&Document::parse("<p>stray<x>a</x></p>").unwrap()).unwrap_err();
        assert!(matches!(&errs[0].kind, ValidationErrorKind::ContentModel(_)));
        // whitespace between elements is fine
        assert!(v.validate(&Document::parse("<p>\n  <x>a</x>\n</p>").unwrap()).is_ok());
    }

    #[test]
    fn mixed_content_allows_text() {
        let s = parse_schema_str(
            r#"<schema xmlns="http://www.w3.org/2001/XMLSchema">
              <element name="p"><complexType mixed="true">
                <sequence><element name="b" type="xsd:string" minOccurs="0"/></sequence>
              </complexType></element></schema>"#,
        )
        .unwrap();
        let v = Validator::new(&s);
        assert!(v.validate(&Document::parse("<p>some <b>bold</b> text</p>").unwrap()).is_ok());
    }

    #[test]
    fn all_errors_collected_not_just_first() {
        let s = parse_schema_str(FIG3).unwrap();
        let v = Validator::new(&s);
        // two bad values: protocol not in enum (after all required elements
        // present) and schema URI with whitespace
        let mut inst = community_instance("Gnutella");
        inst = inst.replace("<schema>http://x/mp3.xsd</schema>", "<schema>has space</schema>");
        inst = inst.replace("<protocol>Gnutella</protocol>", "<protocol>Kazaa</protocol>");
        let errs = v.validate(&Document::parse(&inst).unwrap()).unwrap_err();
        assert_eq!(errs.len(), 2, "{errs:?}");
    }

    #[test]
    fn optional_group_skipped() {
        let s = parse_schema_str(
            r#"<schema xmlns="http://www.w3.org/2001/XMLSchema">
              <element name="doc"><complexType>
                <sequence>
                  <element name="head" type="xsd:string"/>
                  <sequence minOccurs="0">
                    <element name="opt1" type="xsd:string"/>
                    <element name="opt2" type="xsd:string"/>
                  </sequence>
                  <element name="tail" type="xsd:string"/>
                </sequence>
              </complexType></element></schema>"#,
        )
        .unwrap();
        let v = Validator::new(&s);
        assert!(v
            .validate(&Document::parse("<doc><head>h</head><tail>t</tail></doc>").unwrap())
            .is_ok());
        assert!(v
            .validate(
                &Document::parse(
                    "<doc><head>h</head><opt1>1</opt1><opt2>2</opt2><tail>t</tail></doc>"
                )
                .unwrap()
            )
            .is_ok());
        // partial optional group is an error
        assert!(v
            .validate(
                &Document::parse("<doc><head>h</head><opt1>1</opt1><tail>t</tail></doc>")
                    .unwrap()
            )
            .is_err());
    }
}
