//! Object model for the XML Schema subset.
//!
//! A [`Schema`] holds global element declarations plus named simple and
//! complex types. Content models are [`Particle`] trees (sequence/choice
//! with occurrence bounds); simple types are a built-in base plus
//! [`Facets`].

use crate::regex::Regex;
use crate::types::BuiltinType;
use std::collections::BTreeMap;
use std::fmt;

/// Maximum-occurrence bound of a particle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Occurs {
    /// At most this many times.
    Bounded(u32),
    /// `maxOccurs="unbounded"`.
    Unbounded,
}

impl Occurs {
    /// Does `n` repetitions satisfy this bound?
    pub fn allows(self, n: u32) -> bool {
        match self {
            Occurs::Bounded(m) => n <= m,
            Occurs::Unbounded => true,
        }
    }
}

impl fmt::Display for Occurs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Occurs::Bounded(n) => write!(f, "{n}"),
            Occurs::Unbounded => write!(f, "unbounded"),
        }
    }
}

/// Reference to the type of an element or attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeRef {
    /// One of the XSD built-ins (`xsd:string`, ...).
    Builtin(BuiltinType),
    /// A named type defined in the same schema (simple or complex —
    /// resolved at validation time).
    Named(String),
    /// An anonymous inline simple type.
    InlineSimple(Box<SimpleTypeDef>),
    /// An anonymous inline complex type.
    InlineComplex(Box<ComplexType>),
}

/// Restriction facets on a simple type.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Facets {
    /// Allowed values; empty = no enumeration constraint.
    pub enumeration: Vec<String>,
    /// Anchored pattern the value must match.
    pub pattern: Option<Regex>,
    /// Exact length in characters.
    pub length: Option<usize>,
    /// Minimum length in characters.
    pub min_length: Option<usize>,
    /// Maximum length in characters.
    pub max_length: Option<usize>,
    /// Numeric lower bound (inclusive).
    pub min_inclusive: Option<f64>,
    /// Numeric upper bound (inclusive).
    pub max_inclusive: Option<f64>,
    /// Numeric lower bound (exclusive).
    pub min_exclusive: Option<f64>,
    /// Numeric upper bound (exclusive).
    pub max_exclusive: Option<f64>,
}

impl Facets {
    /// `true` when no facet is set.
    pub fn is_empty(&self) -> bool {
        self == &Facets::default()
    }

    /// Checks `value` against every facet; returns the name of the first
    /// violated facet.
    pub fn check(&self, value: &str) -> Result<(), String> {
        if !self.enumeration.is_empty() && !self.enumeration.iter().any(|e| e == value) {
            return Err("enumeration".to_string());
        }
        if let Some(re) = &self.pattern {
            if !re.is_match(value) {
                return Err(format!("pattern {}", re.source()));
            }
        }
        let chars = value.chars().count();
        if let Some(l) = self.length {
            if chars != l {
                return Err(format!("length {l}"));
            }
        }
        if let Some(l) = self.min_length {
            if chars < l {
                return Err(format!("minLength {l}"));
            }
        }
        if let Some(l) = self.max_length {
            if chars > l {
                return Err(format!("maxLength {l}"));
            }
        }
        if self.min_inclusive.is_some()
            || self.max_inclusive.is_some()
            || self.min_exclusive.is_some()
            || self.max_exclusive.is_some()
        {
            let n: f64 = value.trim().parse().map_err(|_| "numeric facet".to_string())?;
            if let Some(b) = self.min_inclusive {
                if n < b {
                    return Err(format!("minInclusive {b}"));
                }
            }
            if let Some(b) = self.max_inclusive {
                if n > b {
                    return Err(format!("maxInclusive {b}"));
                }
            }
            if let Some(b) = self.min_exclusive {
                if n <= b {
                    return Err(format!("minExclusive {b}"));
                }
            }
            if let Some(b) = self.max_exclusive {
                if n >= b {
                    return Err(format!("maxExclusive {b}"));
                }
            }
        }
        Ok(())
    }
}

/// A simple type: a built-in base restricted by facets.
#[derive(Debug, Clone, PartialEq)]
pub struct SimpleTypeDef {
    /// The base built-in type.
    pub base: BuiltinType,
    /// Restriction facets.
    pub facets: Facets,
}

impl SimpleTypeDef {
    /// An unrestricted simple type over `base`.
    pub fn plain(base: BuiltinType) -> Self {
        SimpleTypeDef { base, facets: Facets::default() }
    }

    /// Full check of a value: base type then facets. Returns the violated
    /// constraint name on failure.
    pub fn check(&self, value: &str) -> Result<(), String> {
        if !self.base.is_valid(value) {
            return Err(self.base.to_string());
        }
        self.facets.check(value)
    }
}

/// An element declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ElementDecl {
    /// Element name (NCName; U-P2P communities use unqualified locals).
    pub name: String,
    /// Declared type.
    pub type_ref: TypeRef,
    /// Minimum occurrences (default 1).
    pub min_occurs: u32,
    /// Maximum occurrences (default 1).
    pub max_occurs: Occurs,
    /// `up2p:searchable` — field is extracted into the metadata index and
    /// appears on generated search forms (paper §IV-C2).
    pub searchable: bool,
    /// `up2p:attachment` — field holds a URI naming a network-retrievable
    /// attachment (paper §IV-C1).
    pub attachment: bool,
}

impl ElementDecl {
    /// A mandatory single-occurrence element of the given type.
    pub fn new(name: impl Into<String>, type_ref: TypeRef) -> Self {
        ElementDecl {
            name: name.into(),
            type_ref,
            min_occurs: 1,
            max_occurs: Occurs::Bounded(1),
            searchable: false,
            attachment: false,
        }
    }
}

/// An attribute declaration on a complex type.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeDecl {
    /// Attribute name.
    pub name: String,
    /// Declared simple type.
    pub simple_type: SimpleTypeDef,
    /// `use="required"`.
    pub required: bool,
}

/// Content-model particle.
#[derive(Debug, Clone, PartialEq)]
pub enum Particle {
    /// A single element declaration (occurrence bounds live on the decl).
    Element(ElementDecl),
    /// Ordered group.
    Sequence {
        /// Group members in order.
        items: Vec<Particle>,
        /// Group minimum occurrences.
        min_occurs: u32,
        /// Group maximum occurrences.
        max_occurs: Occurs,
    },
    /// Exclusive-or group.
    Choice {
        /// Alternatives.
        items: Vec<Particle>,
        /// Group minimum occurrences.
        min_occurs: u32,
        /// Group maximum occurrences.
        max_occurs: Occurs,
    },
    /// Unordered group (`xs:all`): each member element at most once, in any
    /// order.
    All {
        /// Member element declarations.
        items: Vec<ElementDecl>,
    },
}

impl Particle {
    /// Walks all element declarations in this particle tree, depth-first.
    pub fn element_decls(&self) -> Vec<&ElementDecl> {
        let mut out = Vec::new();
        self.collect_decls(&mut out);
        out
    }

    fn collect_decls<'a>(&'a self, out: &mut Vec<&'a ElementDecl>) {
        match self {
            Particle::Element(d) => out.push(d),
            Particle::Sequence { items, .. } | Particle::Choice { items, .. } => {
                for p in items {
                    p.collect_decls(out);
                }
            }
            Particle::All { items } => out.extend(items.iter()),
        }
    }
}

/// A complex type: an optional content particle plus attributes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ComplexType {
    /// Content model; `None` = empty content.
    pub particle: Option<Particle>,
    /// Declared attributes.
    pub attributes: Vec<AttributeDecl>,
    /// `mixed="true"` — character data allowed between child elements.
    pub mixed: bool,
}

/// A parsed schema: global element declarations plus named types.
///
/// Use [`crate::parse_schema`] to obtain one from an XSD document and
/// [`crate::Validator`] to validate instances.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    /// `targetNamespace`, when declared.
    pub target_namespace: Option<String>,
    /// Global element declarations, in document order.
    pub root_elements: Vec<ElementDecl>,
    /// Named simple types.
    pub simple_types: BTreeMap<String, SimpleTypeDef>,
    /// Named complex types.
    pub complex_types: BTreeMap<String, ComplexType>,
}

impl Schema {
    /// The first global element declaration — the document element of
    /// instances. U-P2P community schemas declare exactly one.
    pub fn root_element(&self) -> Option<&ElementDecl> {
        self.root_elements.first()
    }

    /// Looks up a global element declaration by name.
    pub fn root_element_named(&self, name: &str) -> Option<&ElementDecl> {
        self.root_elements.iter().find(|e| e.name == name)
    }

    /// Resolves a named type to a simple type, if it is one.
    pub fn simple_type(&self, name: &str) -> Option<&SimpleTypeDef> {
        self.simple_types.get(name)
    }

    /// Resolves a named type to a complex type, if it is one.
    pub fn complex_type(&self, name: &str) -> Option<&ComplexType> {
        self.complex_types.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occurs_allows() {
        assert!(Occurs::Bounded(2).allows(2));
        assert!(!Occurs::Bounded(2).allows(3));
        assert!(Occurs::Unbounded.allows(1_000_000));
        assert_eq!(Occurs::Unbounded.to_string(), "unbounded");
    }

    #[test]
    fn facets_enumeration() {
        let f = Facets {
            enumeration: vec!["".into(), "Napster".into(), "Gnutella".into()],
            ..Facets::default()
        };
        assert!(f.check("Napster").is_ok());
        assert!(f.check("").is_ok());
        assert_eq!(f.check("Kazaa").unwrap_err(), "enumeration");
    }

    #[test]
    fn facets_lengths() {
        let f = Facets { min_length: Some(2), max_length: Some(4), ..Facets::default() };
        assert!(f.check("ab").is_ok());
        assert!(f.check("abcd").is_ok());
        assert!(f.check("a").is_err());
        assert!(f.check("abcde").is_err());
    }

    #[test]
    fn facets_numeric_bounds() {
        let f = Facets { min_inclusive: Some(0.0), max_exclusive: Some(10.0), ..Facets::default() };
        assert!(f.check("0").is_ok());
        assert!(f.check("9.9").is_ok());
        assert!(f.check("10").is_err());
        assert!(f.check("-1").is_err());
        assert!(f.check("abc").is_err());
    }

    #[test]
    fn facets_pattern() {
        let f = Facets {
            pattern: Some(Regex::parse(r"\d{4}").unwrap()),
            ..Facets::default()
        };
        assert!(f.check("2002").is_ok());
        assert!(f.check("02").is_err());
    }

    #[test]
    fn simple_type_checks_base_before_facets() {
        let t = SimpleTypeDef {
            base: BuiltinType::Integer,
            facets: Facets { min_inclusive: Some(1.0), ..Facets::default() },
        };
        assert!(t.check("5").is_ok());
        assert_eq!(t.check("abc").unwrap_err(), "xsd:integer");
        assert_eq!(t.check("0").unwrap_err(), "minInclusive 1");
    }

    #[test]
    fn particle_collects_decls() {
        let p = Particle::Sequence {
            items: vec![
                Particle::Element(ElementDecl::new("a", TypeRef::Builtin(BuiltinType::String))),
                Particle::Choice {
                    items: vec![
                        Particle::Element(ElementDecl::new(
                            "b",
                            TypeRef::Builtin(BuiltinType::String),
                        )),
                        Particle::Element(ElementDecl::new(
                            "c",
                            TypeRef::Builtin(BuiltinType::String),
                        )),
                    ],
                    min_occurs: 1,
                    max_occurs: Occurs::Bounded(1),
                },
            ],
            min_occurs: 1,
            max_occurs: Occurs::Bounded(1),
        };
        let names: Vec<&str> = p.element_decls().iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }
}
