//! # up2p-schema
//!
//! XML Schema (XSD) subset for the U-P2P reproduction: schema object model,
//! XSD parser, instance validator, built-in types, restriction facets
//! (including a small anchored regex engine for `pattern`), searchable-
//! field extraction, XSD writer and a programmatic schema builder.
//!
//! In U-P2P (Mukherjee et al., ICDCS 2002) *the schema is the community*:
//! it defines the shared object, drives generated create/search/view
//! interfaces, and is itself shared as an object in the bootstrap "root
//! community". This crate provides everything the framework needs to treat
//! schemas as first-class data.
//!
//! ```
//! use up2p_schema::{parse_schema_str, searchable_fields, Validator};
//! use up2p_xml::Document;
//!
//! let schema = parse_schema_str(r#"
//!   <schema xmlns="http://www.w3.org/2001/XMLSchema"
//!           xmlns:up2p="http://up2p.sce.carleton.ca/ns">
//!     <element name="pattern"><complexType><sequence>
//!       <element name="name" type="xsd:string" up2p:searchable="true"/>
//!       <element name="intent" type="xsd:string" up2p:searchable="true"/>
//!     </sequence></complexType></element>
//!   </schema>"#)?;
//!
//! let instance = Document::parse(
//!     "<pattern><name>Observer</name><intent>notify dependents</intent></pattern>")?;
//! Validator::new(&schema).validate(&instance).unwrap();
//! assert_eq!(searchable_fields(&schema).len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
mod error;
mod model;
mod parser;
mod regex;
mod searchable;
mod types;
mod validator;
mod writer;

pub use builder::{FieldKind, SchemaBuilder};
pub use error::{ParseSchemaError, ValidationError, ValidationErrorKind};
pub use model::{
    AttributeDecl, ComplexType, ElementDecl, Facets, Occurs, Particle, Schema, SimpleTypeDef,
    TypeRef,
};
pub use parser::{parse_schema, parse_schema_str};
pub use regex::Regex;
pub use searchable::{attachment_fields, leaf_fields, searchable_fields, Field};
pub use types::BuiltinType;
pub use validator::Validator;
pub use writer::{write_schema, write_schema_string};
