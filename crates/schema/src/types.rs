//! Built-in XML Schema simple types and their value checks.

use std::fmt;

/// The subset of XSD built-in primitive/derived types used by U-P2P
/// community schemas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BuiltinType {
    /// `xsd:string` — any text.
    String,
    /// `xsd:normalizedString` / `xsd:token` — treated as string.
    Token,
    /// `xsd:boolean` — `true|false|1|0`.
    Boolean,
    /// `xsd:integer` and friends (`int`, `long`, `short`).
    Integer,
    /// `xsd:nonNegativeInteger` / `xsd:unsignedInt`.
    NonNegativeInteger,
    /// `xsd:positiveInteger`.
    PositiveInteger,
    /// `xsd:decimal`, `xsd:float`, `xsd:double`.
    Decimal,
    /// `xsd:anyURI` — loose check: non-empty-scheme-less values allowed,
    /// whitespace rejected.
    AnyUri,
    /// `xsd:date` — `YYYY-MM-DD`.
    Date,
    /// `xsd:dateTime` — `YYYY-MM-DDThh:mm:ss` with optional zone.
    DateTime,
    /// `xsd:gYear` — `YYYY`.
    GYear,
}

impl BuiltinType {
    /// Resolves an XSD type local name (e.g. `string`, `anyURI`) to a
    /// built-in type, if it is one this subset knows.
    pub fn from_name(name: &str) -> Option<BuiltinType> {
        Some(match name {
            "string" => BuiltinType::String,
            "normalizedString" | "token" | "Name" | "NCName" | "ID" | "IDREF" => {
                BuiltinType::Token
            }
            "boolean" => BuiltinType::Boolean,
            "integer" | "int" | "long" | "short" | "byte" => BuiltinType::Integer,
            "nonNegativeInteger" | "unsignedInt" | "unsignedLong" | "unsignedShort" => {
                BuiltinType::NonNegativeInteger
            }
            "positiveInteger" => BuiltinType::PositiveInteger,
            "decimal" | "float" | "double" => BuiltinType::Decimal,
            "anyURI" => BuiltinType::AnyUri,
            "date" => BuiltinType::Date,
            "dateTime" => BuiltinType::DateTime,
            "gYear" => BuiltinType::GYear,
            _ => return None,
        })
    }

    /// The canonical XSD local name for this type.
    pub fn name(self) -> &'static str {
        match self {
            BuiltinType::String => "string",
            BuiltinType::Token => "token",
            BuiltinType::Boolean => "boolean",
            BuiltinType::Integer => "integer",
            BuiltinType::NonNegativeInteger => "nonNegativeInteger",
            BuiltinType::PositiveInteger => "positiveInteger",
            BuiltinType::Decimal => "decimal",
            BuiltinType::AnyUri => "anyURI",
            BuiltinType::Date => "date",
            BuiltinType::DateTime => "dateTime",
            BuiltinType::GYear => "gYear",
        }
    }

    /// Checks a lexical value against this type.
    pub fn is_valid(self, value: &str) -> bool {
        match self {
            BuiltinType::String => true,
            BuiltinType::Token => value == value.trim() && !value.contains('\n'),
            BuiltinType::Boolean => matches!(value, "true" | "false" | "1" | "0"),
            BuiltinType::Integer => parse_integer(value).is_some(),
            BuiltinType::NonNegativeInteger => parse_integer(value).is_some_and(|i| i >= 0),
            BuiltinType::PositiveInteger => parse_integer(value).is_some_and(|i| i > 0),
            BuiltinType::Decimal => {
                let v = value.trim();
                !v.is_empty() && v.parse::<f64>().is_ok()
            }
            BuiltinType::AnyUri => !value.chars().any(|c| c.is_whitespace()),
            BuiltinType::Date => is_date(value),
            BuiltinType::DateTime => is_date_time(value),
            BuiltinType::GYear => value.len() == 4 && value.chars().all(|c| c.is_ascii_digit()),
        }
    }

    /// `true` for types whose values order numerically (enables min/max
    /// facets and range queries).
    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            BuiltinType::Integer
                | BuiltinType::NonNegativeInteger
                | BuiltinType::PositiveInteger
                | BuiltinType::Decimal
        )
    }

    /// `true` for types whose values are human-readable text worth
    /// tokenizing into the metadata index.
    pub fn is_textual(self) -> bool {
        matches!(self, BuiltinType::String | BuiltinType::Token)
    }
}

impl fmt::Display for BuiltinType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xsd:{}", self.name())
    }
}

fn parse_integer(value: &str) -> Option<i64> {
    let v = value.trim();
    if v.is_empty() {
        return None;
    }
    v.parse::<i64>().ok()
}

fn is_date(value: &str) -> bool {
    let bytes = value.as_bytes();
    if bytes.len() != 10 || bytes[4] != b'-' || bytes[7] != b'-' {
        return false;
    }
    let year = &value[0..4];
    let month = &value[5..7];
    let day = &value[8..10];
    if !year.chars().all(|c| c.is_ascii_digit())
        || !month.chars().all(|c| c.is_ascii_digit())
        || !day.chars().all(|c| c.is_ascii_digit())
    {
        return false;
    }
    let m: u32 = month.parse().unwrap_or(0);
    let d: u32 = day.parse().unwrap_or(0);
    (1..=12).contains(&m) && (1..=31).contains(&d)
}

fn is_date_time(value: &str) -> bool {
    let Some((date, time)) = value.split_once('T') else {
        return false;
    };
    if !is_date(date) {
        return false;
    }
    // strip optional timezone
    let time = time.strip_suffix('Z').unwrap_or(time);
    let time = match (time.rfind('+'), time.rfind('-')) {
        (Some(i), _) | (None, Some(i)) => &time[..i],
        _ => time,
    };
    let parts: Vec<&str> = time.split(':').collect();
    if parts.len() < 3 {
        return false;
    }
    let h: u32 = parts[0].parse().unwrap_or(99);
    let m: u32 = parts[1].parse().unwrap_or(99);
    let s: f64 = parts[2].parse().unwrap_or(99.0);
    h < 24 && m < 60 && s < 61.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for t in [
            BuiltinType::String,
            BuiltinType::Boolean,
            BuiltinType::Integer,
            BuiltinType::Decimal,
            BuiltinType::AnyUri,
            BuiltinType::Date,
            BuiltinType::DateTime,
            BuiltinType::GYear,
            BuiltinType::NonNegativeInteger,
            BuiltinType::PositiveInteger,
        ] {
            assert_eq!(BuiltinType::from_name(t.name()), Some(t), "{t}");
        }
        assert_eq!(BuiltinType::from_name("nosuch"), None);
    }

    #[test]
    fn aliases_resolve() {
        assert_eq!(BuiltinType::from_name("int"), Some(BuiltinType::Integer));
        assert_eq!(BuiltinType::from_name("double"), Some(BuiltinType::Decimal));
        assert_eq!(BuiltinType::from_name("token"), Some(BuiltinType::Token));
    }

    #[test]
    fn boolean_values() {
        assert!(BuiltinType::Boolean.is_valid("true"));
        assert!(BuiltinType::Boolean.is_valid("0"));
        assert!(!BuiltinType::Boolean.is_valid("yes"));
    }

    #[test]
    fn integer_values() {
        assert!(BuiltinType::Integer.is_valid("-42"));
        assert!(BuiltinType::Integer.is_valid(" 7 "));
        assert!(!BuiltinType::Integer.is_valid("3.5"));
        assert!(!BuiltinType::Integer.is_valid(""));
        assert!(BuiltinType::NonNegativeInteger.is_valid("0"));
        assert!(!BuiltinType::NonNegativeInteger.is_valid("-1"));
        assert!(BuiltinType::PositiveInteger.is_valid("1"));
        assert!(!BuiltinType::PositiveInteger.is_valid("0"));
    }

    #[test]
    fn decimal_values() {
        assert!(BuiltinType::Decimal.is_valid("3.25"));
        assert!(BuiltinType::Decimal.is_valid("-1e3"));
        assert!(!BuiltinType::Decimal.is_valid("abc"));
    }

    #[test]
    fn uri_values() {
        assert!(BuiltinType::AnyUri.is_valid("http://example.org/x.xsd"));
        assert!(BuiltinType::AnyUri.is_valid("up2p:community/12ab"));
        assert!(BuiltinType::AnyUri.is_valid("")); // empty URI is lexically fine
        assert!(!BuiltinType::AnyUri.is_valid("has space"));
    }

    #[test]
    fn date_values() {
        assert!(BuiltinType::Date.is_valid("2002-02-14"));
        assert!(!BuiltinType::Date.is_valid("2002-13-01"));
        assert!(!BuiltinType::Date.is_valid("02-02-14"));
        assert!(!BuiltinType::Date.is_valid("2002/02/14"));
    }

    #[test]
    fn datetime_values() {
        assert!(BuiltinType::DateTime.is_valid("2002-02-14T12:30:00"));
        assert!(BuiltinType::DateTime.is_valid("2002-02-14T12:30:00Z"));
        assert!(BuiltinType::DateTime.is_valid("2002-02-14T12:30:00-05:00"));
        assert!(!BuiltinType::DateTime.is_valid("2002-02-14"));
        assert!(!BuiltinType::DateTime.is_valid("2002-02-14T25:00:00"));
    }

    #[test]
    fn textual_and_numeric_classification() {
        assert!(BuiltinType::String.is_textual());
        assert!(!BuiltinType::Integer.is_textual());
        assert!(BuiltinType::Integer.is_numeric());
        assert!(!BuiltinType::AnyUri.is_numeric());
    }
}
