//! Serialization of a [`Schema`] back to an XSD document.
//!
//! U-P2P shares community schemas over the network as XML text (joining a
//! community means downloading its schema), so the model must round-trip:
//! `parse_schema(write_schema(s)) == s`.

use crate::model::{
    AttributeDecl, ComplexType, ElementDecl, Occurs, Particle, Schema, SimpleTypeDef, TypeRef,
};
use up2p_xml::{Document, ElementBuilder, UP2P_NS, XSD_NS};

/// Serializes `schema` to an XSD [`Document`].
pub fn write_schema(schema: &Schema) -> Document {
    let mut root = ElementBuilder::new("schema")
        .attr("xmlns", XSD_NS)
        .attr("xmlns:up2p", UP2P_NS);
    if let Some(tns) = &schema.target_namespace {
        root = root.attr("targetNamespace", tns.clone());
    }
    for decl in &schema.root_elements {
        root = root.child(element_decl(decl));
    }
    for (name, st) in &schema.simple_types {
        root = root.child(simple_type_body(st).attr("name", name.clone()));
    }
    for (name, ct) in &schema.complex_types {
        root = root.child(complex_type_body(ct).attr("name", name.clone()));
    }
    root.build()
}

/// Serializes `schema` to pretty-printed XSD text.
pub fn write_schema_string(schema: &Schema) -> String {
    write_schema(schema).to_xml_pretty()
}

fn element_decl(decl: &ElementDecl) -> ElementBuilder {
    let mut e = ElementBuilder::new("element").attr("name", decl.name.clone());
    if decl.min_occurs != 1 {
        e = e.attr("minOccurs", decl.min_occurs.to_string());
    }
    match decl.max_occurs {
        Occurs::Bounded(1) => {}
        Occurs::Bounded(n) => e = e.attr("maxOccurs", n.to_string()),
        Occurs::Unbounded => e = e.attr("maxOccurs", "unbounded"),
    }
    if decl.searchable {
        e = e.attr("up2p:searchable", "true");
    }
    if decl.attachment {
        e = e.attr("up2p:attachment", "true");
    }
    match &decl.type_ref {
        TypeRef::Builtin(b) => e.attr("type", format!("xsd:{}", b.name())),
        TypeRef::Named(n) => e.attr("type", n.clone()),
        TypeRef::InlineSimple(st) => e.child(simple_type_body(st)),
        TypeRef::InlineComplex(ct) => e.child(complex_type_body(ct)),
    }
}

fn simple_type_body(st: &SimpleTypeDef) -> ElementBuilder {
    let mut restriction =
        ElementBuilder::new("restriction").attr("base", format!("xsd:{}", st.base.name()));
    for v in &st.facets.enumeration {
        restriction = restriction.child(ElementBuilder::new("enumeration").attr("value", v.clone()));
    }
    if let Some(p) = &st.facets.pattern {
        restriction = restriction.child(ElementBuilder::new("pattern").attr("value", p.source()));
    }
    let mut facet = |name: &str, v: Option<String>| {
        if let Some(v) = v {
            restriction =
                restriction.clone().child(ElementBuilder::new(name).attr("value", v));
        }
    };
    facet("length", st.facets.length.map(|v| v.to_string()));
    facet("minLength", st.facets.min_length.map(|v| v.to_string()));
    facet("maxLength", st.facets.max_length.map(|v| v.to_string()));
    facet("minInclusive", st.facets.min_inclusive.map(fmt_f64));
    facet("maxInclusive", st.facets.max_inclusive.map(fmt_f64));
    facet("minExclusive", st.facets.min_exclusive.map(fmt_f64));
    facet("maxExclusive", st.facets.max_exclusive.map(fmt_f64));
    ElementBuilder::new("simpleType").child(restriction)
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn complex_type_body(ct: &ComplexType) -> ElementBuilder {
    let mut e = ElementBuilder::new("complexType");
    if ct.mixed {
        e = e.attr("mixed", "true");
    }
    if let Some(p) = &ct.particle {
        e = e.child(particle(p));
    }
    for a in &ct.attributes {
        e = e.child(attribute_decl(a));
    }
    e
}

fn particle(p: &Particle) -> ElementBuilder {
    match p {
        Particle::Element(d) => element_decl(d),
        Particle::Sequence { items, min_occurs, max_occurs } => {
            group("sequence", items, *min_occurs, *max_occurs)
        }
        Particle::Choice { items, min_occurs, max_occurs } => {
            group("choice", items, *min_occurs, *max_occurs)
        }
        Particle::All { items } => {
            let mut e = ElementBuilder::new("all");
            for d in items {
                e = e.child(element_decl(d));
            }
            e
        }
    }
}

fn group(tag: &str, items: &[Particle], min: u32, max: Occurs) -> ElementBuilder {
    let mut e = ElementBuilder::new(tag);
    if min != 1 {
        e = e.attr("minOccurs", min.to_string());
    }
    match max {
        Occurs::Bounded(1) => {}
        Occurs::Bounded(n) => e = e.attr("maxOccurs", n.to_string()),
        Occurs::Unbounded => e = e.attr("maxOccurs", "unbounded"),
    }
    for item in items {
        e = e.child(particle(item));
    }
    e
}

fn attribute_decl(a: &AttributeDecl) -> ElementBuilder {
    let mut e = ElementBuilder::new("attribute").attr("name", a.name.clone());
    if a.required {
        e = e.attr("use", "required");
    }
    if a.simple_type.facets.is_empty() {
        e.attr("type", format!("xsd:{}", a.simple_type.base.name()))
    } else {
        e.child(simple_type_body(&a.simple_type))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_schema_str;

    #[test]
    fn fig3_round_trips() {
        let original = parse_schema_str(crate::parser::tests::FIG3).unwrap();
        let xsd = write_schema_string(&original);
        let reparsed = parse_schema_str(&xsd).unwrap();
        assert_eq!(original, reparsed, "round-trip changed the model:\n{xsd}");
    }

    #[test]
    fn markers_round_trip() {
        let src = r#"<schema xmlns="http://www.w3.org/2001/XMLSchema"
                             xmlns:up2p="http://up2p.sce.carleton.ca/ns">
          <element name="song"><complexType><sequence>
            <element name="title" type="xsd:string" up2p:searchable="true"/>
            <element name="tags" type="xsd:string" minOccurs="0" maxOccurs="unbounded"/>
            <element name="data" type="xsd:anyURI" up2p:attachment="true"/>
          </sequence></complexType></element></schema>"#;
        let original = parse_schema_str(src).unwrap();
        let reparsed = parse_schema_str(&write_schema_string(&original)).unwrap();
        assert_eq!(original, reparsed);
    }

    #[test]
    fn facets_round_trip() {
        let src = r#"<schema xmlns="http://www.w3.org/2001/XMLSchema">
          <element name="x" type="t"/>
          <simpleType name="t"><restriction base="integer">
            <minInclusive value="0"/><maxExclusive value="100"/>
          </restriction></simpleType></schema>"#;
        let original = parse_schema_str(src).unwrap();
        let reparsed = parse_schema_str(&write_schema_string(&original)).unwrap();
        assert_eq!(original, reparsed);
    }

    #[test]
    fn choice_and_all_round_trip() {
        let src = r#"<schema xmlns="http://www.w3.org/2001/XMLSchema">
          <element name="m"><complexType><sequence>
            <element name="t" type="xsd:string"/>
            <choice minOccurs="0"><element name="a" type="xsd:string"/>
              <element name="b" type="xsd:string"/></choice>
          </sequence></complexType></element>
          <element name="c"><complexType><all>
            <element name="x" type="xsd:string"/>
          </all></complexType></element>
        </schema>"#;
        let original = parse_schema_str(src).unwrap();
        let reparsed = parse_schema_str(&write_schema_string(&original)).unwrap();
        assert_eq!(original, reparsed);
    }

    #[test]
    fn attributes_round_trip() {
        let src = r#"<schema xmlns="http://www.w3.org/2001/XMLSchema">
          <element name="p"><complexType>
            <sequence><element name="x" type="xsd:string"/></sequence>
            <attribute name="lang" type="xsd:string" use="required"/>
          </complexType></element></schema>"#;
        let original = parse_schema_str(src).unwrap();
        let reparsed = parse_schema_str(&write_schema_string(&original)).unwrap();
        assert_eq!(original, reparsed);
    }
}
