//! Error types for schema parsing and instance validation.

use std::fmt;

/// Error raised while turning an XSD document into a [`crate::Schema`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSchemaError {
    message: String,
}

impl ParseSchemaError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ParseSchemaError { message: message.into() }
    }

    /// Human-readable description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseSchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schema error: {}", self.message)
    }
}

impl std::error::Error for ParseSchemaError {}

/// A single validation problem found in an instance document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// Slash-separated element path from the root, e.g.
    /// `community/protocol`.
    pub path: String,
    /// What went wrong at that path.
    pub kind: ValidationErrorKind,
}

/// The specific validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationErrorKind {
    /// Root element name did not match any global element declaration.
    UnknownRootElement(String),
    /// An element appeared that the content model does not allow.
    UnexpectedElement(String),
    /// A required element is missing.
    MissingElement(String),
    /// Content model mismatch with a description.
    ContentModel(String),
    /// A simple-typed value failed its base type check.
    InvalidValue {
        /// The offending value.
        value: String,
        /// The expected built-in type, e.g. `xsd:integer`.
        expected: String,
    },
    /// A facet (enumeration, pattern, length, range) was violated.
    FacetViolation {
        /// The offending value.
        value: String,
        /// Description of the violated facet, e.g. `enumeration`.
        facet: String,
    },
    /// A required attribute is missing.
    MissingAttribute(String),
    /// An attribute not declared in the schema (only reported for
    /// non-namespace attributes).
    UnexpectedAttribute(String),
    /// Reference to a type the schema does not define.
    UnknownType(String),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ValidationErrorKind::UnknownRootElement(n) => {
                write!(f, "{}: unknown root element <{n}>", self.path)
            }
            ValidationErrorKind::UnexpectedElement(n) => {
                write!(f, "{}: unexpected element <{n}>", self.path)
            }
            ValidationErrorKind::MissingElement(n) => {
                write!(f, "{}: missing required element <{n}>", self.path)
            }
            ValidationErrorKind::ContentModel(d) => write!(f, "{}: {d}", self.path),
            ValidationErrorKind::InvalidValue { value, expected } => {
                write!(f, "{}: value {value:?} is not a valid {expected}", self.path)
            }
            ValidationErrorKind::FacetViolation { value, facet } => {
                write!(f, "{}: value {value:?} violates {facet}", self.path)
            }
            ValidationErrorKind::MissingAttribute(n) => {
                write!(f, "{}: missing required attribute {n:?}", self.path)
            }
            ValidationErrorKind::UnexpectedAttribute(n) => {
                write!(f, "{}: unexpected attribute {n:?}", self.path)
            }
            ValidationErrorKind::UnknownType(t) => {
                write!(f, "{}: reference to unknown type {t:?}", self.path)
            }
        }
    }
}

impl std::error::Error for ValidationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = ValidationError {
            path: "community/protocol".into(),
            kind: ValidationErrorKind::FacetViolation {
                value: "Kazaa".into(),
                facet: "enumeration".into(),
            },
        };
        assert_eq!(e.to_string(), "community/protocol: value \"Kazaa\" violates enumeration");
    }

    #[test]
    fn parse_error_display() {
        let e = ParseSchemaError::new("element without name");
        assert_eq!(e.to_string(), "schema error: element without name");
    }
}
