//! A small anchored regular-expression engine for the XSD `pattern` facet.
//!
//! XML Schema patterns are implicitly anchored at both ends, so this engine
//! always matches the *whole* input. Supported syntax: literal characters,
//! `.`, escapes (`\d \D \w \W \s \S \n \t \r \\ \. \- \[ \] \( \) \* \+ \?
//! \{ \} \|`), character classes `[a-z0-9_]` with ranges and negation,
//! groups `( )`, alternation `|`, and the quantifiers `* + ? {n} {n,} {n,m}`.
//!
//! ```
//! use up2p_schema::Regex;
//! let re = Regex::parse(r"[A-Z][a-z]+( [A-Z][a-z]+)*")?;
//! assert!(re.is_match("Abstract Factory"));
//! assert!(!re.is_match("abstract factory"));
//! # Ok::<(), up2p_schema::ParseSchemaError>(())
//! ```

use crate::error::ParseSchemaError;

/// A compiled, anchored regular expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Regex {
    node: Node,
    source: String,
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    /// Empty string.
    Empty,
    /// A single character matcher.
    Char(CharClass),
    /// Concatenation of parts.
    Seq(Vec<Node>),
    /// Alternation between branches.
    Alt(Vec<Node>),
    /// Repetition of the inner node between `min` and `max` (inclusive;
    /// `None` = unbounded) times.
    Repeat { inner: Box<Node>, min: u32, max: Option<u32> },
}

#[derive(Debug, Clone, PartialEq)]
enum CharClass {
    Literal(char),
    Any,
    Digit(bool),
    Word(bool),
    Space(bool),
    /// Explicit set: (negated, single chars, ranges)
    Set { negated: bool, chars: Vec<char>, ranges: Vec<(char, char)> },
}

impl CharClass {
    fn matches(&self, c: char) -> bool {
        match self {
            CharClass::Literal(l) => *l == c,
            CharClass::Any => c != '\n',
            CharClass::Digit(pos) => c.is_ascii_digit() == *pos,
            CharClass::Word(pos) => (c.is_alphanumeric() || c == '_') == *pos,
            CharClass::Space(pos) => c.is_whitespace() == *pos,
            CharClass::Set { negated, chars, ranges } => {
                let inside =
                    chars.contains(&c) || ranges.iter().any(|&(a, b)| c >= a && c <= b);
                inside != *negated
            }
        }
    }
}

impl Regex {
    /// Compiles a pattern.
    ///
    /// # Errors
    ///
    /// Returns [`ParseSchemaError`] for malformed patterns (unbalanced
    /// groups, bad ranges, dangling quantifiers, ...).
    pub fn parse(pattern: &str) -> Result<Regex, ParseSchemaError> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut p = PatternParser { chars, pos: 0 };
        let node = p.parse_alt()?;
        if p.pos != p.chars.len() {
            return Err(ParseSchemaError::new(format!(
                "unexpected {:?} in pattern {pattern:?}",
                p.chars[p.pos]
            )));
        }
        Ok(Regex { node, source: pattern.to_string() })
    }

    /// The original pattern text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Does the pattern match the *entire* input (XSD anchoring)?
    pub fn is_match(&self, input: &str) -> bool {
        let chars: Vec<char> = input.chars().collect();
        match_node(&self.node, &chars, 0, &mut |end| end == chars.len())
    }
}

impl std::fmt::Display for Regex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.source)
    }
}

/// Backtracking matcher: tries to match `node` at `pos`, invoking `k` with
/// each candidate end position until `k` returns true.
fn match_node(node: &Node, input: &[char], pos: usize, k: &mut dyn FnMut(usize) -> bool) -> bool {
    match node {
        Node::Empty => k(pos),
        Node::Char(class) => {
            if pos < input.len() && class.matches(input[pos]) {
                k(pos + 1)
            } else {
                false
            }
        }
        Node::Seq(parts) => match_seq(parts, input, pos, k),
        Node::Alt(branches) => branches.iter().any(|b| match_node(b, input, pos, k)),
        Node::Repeat { inner, min, max } => {
            match_repeat(inner, *min, *max, input, pos, 0, k)
        }
    }
}

fn match_seq(
    parts: &[Node],
    input: &[char],
    pos: usize,
    k: &mut dyn FnMut(usize) -> bool,
) -> bool {
    match parts.split_first() {
        None => k(pos),
        Some((head, tail)) => {
            match_node(head, input, pos, &mut |next| match_seq(tail, input, next, k))
        }
    }
}

fn match_repeat(
    inner: &Node,
    min: u32,
    max: Option<u32>,
    input: &[char],
    pos: usize,
    done: u32,
    k: &mut dyn FnMut(usize) -> bool,
) -> bool {
    // greedy: try one more repetition first (when allowed), then yield
    let can_more = max.is_none_or(|m| done < m);
    if can_more
        && match_node(inner, input, pos, &mut |next| {
            // zero-width progress guard prevents infinite loops on `()*`
            next != pos && match_repeat(inner, min, max, input, next, done + 1, k)
        })
    {
        return true;
    }
    if done >= min {
        return k(pos);
    }
    false
}

struct PatternParser {
    chars: Vec<char>,
    pos: usize,
}

impl PatternParser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn parse_alt(&mut self) -> Result<Node, ParseSchemaError> {
        let mut branches = vec![self.parse_seq()?];
        while self.peek() == Some('|') {
            self.bump();
            branches.push(self.parse_seq()?);
        }
        Ok(if branches.len() == 1 { branches.pop().unwrap() } else { Node::Alt(branches) })
    }

    fn parse_seq(&mut self) -> Result<Node, ParseSchemaError> {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            parts.push(self.parse_repeat()?);
        }
        Ok(match parts.len() {
            0 => Node::Empty,
            1 => parts.pop().unwrap(),
            _ => Node::Seq(parts),
        })
    }

    fn parse_repeat(&mut self) -> Result<Node, ParseSchemaError> {
        let atom = self.parse_atom()?;
        match self.peek() {
            Some('*') => {
                self.bump();
                Ok(Node::Repeat { inner: Box::new(atom), min: 0, max: None })
            }
            Some('+') => {
                self.bump();
                Ok(Node::Repeat { inner: Box::new(atom), min: 1, max: None })
            }
            Some('?') => {
                self.bump();
                Ok(Node::Repeat { inner: Box::new(atom), min: 0, max: Some(1) })
            }
            Some('{') => {
                self.bump();
                let mut digits = String::new();
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    digits.push(self.bump().unwrap());
                }
                let min: u32 = digits
                    .parse()
                    .map_err(|_| ParseSchemaError::new("invalid repetition count"))?;
                let max = match self.bump() {
                    Some('}') => Some(min),
                    Some(',') => {
                        let mut d2 = String::new();
                        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                            d2.push(self.bump().unwrap());
                        }
                        if self.bump() != Some('}') {
                            return Err(ParseSchemaError::new("unterminated {m,n}"));
                        }
                        if d2.is_empty() {
                            None
                        } else {
                            Some(
                                d2.parse().map_err(|_| {
                                    ParseSchemaError::new("invalid repetition count")
                                })?,
                            )
                        }
                    }
                    _ => return Err(ParseSchemaError::new("unterminated {m,n}")),
                };
                if let Some(m) = max {
                    if m < min {
                        return Err(ParseSchemaError::new("repetition max below min"));
                    }
                }
                Ok(Node::Repeat { inner: Box::new(atom), min, max })
            }
            _ => Ok(atom),
        }
    }

    fn parse_atom(&mut self) -> Result<Node, ParseSchemaError> {
        match self.bump() {
            None => Err(ParseSchemaError::new("unexpected end of pattern")),
            Some('(') => {
                let inner = self.parse_alt()?;
                if self.bump() != Some(')') {
                    return Err(ParseSchemaError::new("unbalanced group"));
                }
                Ok(inner)
            }
            Some('.') => Ok(Node::Char(CharClass::Any)),
            Some('[') => self.parse_class(),
            Some('\\') => Ok(Node::Char(self.parse_escape()?)),
            Some(c @ ('*' | '+' | '?' | '{')) => {
                Err(ParseSchemaError::new(format!("dangling quantifier {c:?}")))
            }
            Some(c) => Ok(Node::Char(CharClass::Literal(c))),
        }
    }

    fn parse_escape(&mut self) -> Result<CharClass, ParseSchemaError> {
        match self.bump() {
            None => Err(ParseSchemaError::new("dangling escape")),
            Some('d') => Ok(CharClass::Digit(true)),
            Some('D') => Ok(CharClass::Digit(false)),
            Some('w') => Ok(CharClass::Word(true)),
            Some('W') => Ok(CharClass::Word(false)),
            Some('s') => Ok(CharClass::Space(true)),
            Some('S') => Ok(CharClass::Space(false)),
            Some('n') => Ok(CharClass::Literal('\n')),
            Some('t') => Ok(CharClass::Literal('\t')),
            Some('r') => Ok(CharClass::Literal('\r')),
            Some(c) => Ok(CharClass::Literal(c)),
        }
    }

    fn parse_class(&mut self) -> Result<Node, ParseSchemaError> {
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut chars = Vec::new();
        let mut ranges = Vec::new();
        loop {
            match self.bump() {
                None => return Err(ParseSchemaError::new("unterminated character class")),
                Some(']') => break,
                Some('\\') => match self.parse_escape()? {
                    CharClass::Literal(c) => chars.push(c),
                    CharClass::Digit(true) => ranges.push(('0', '9')),
                    CharClass::Word(true) => {
                        ranges.extend([('a', 'z'), ('A', 'Z'), ('0', '9')]);
                        chars.push('_');
                    }
                    CharClass::Space(true) => chars.extend([' ', '\t', '\n', '\r']),
                    _ => {
                        return Err(ParseSchemaError::new(
                            "negated escape not supported inside class",
                        ))
                    }
                },
                Some(c) => {
                    if self.peek() == Some('-')
                        && self.chars.get(self.pos + 1).is_some_and(|&n| n != ']')
                    {
                        self.bump(); // '-'
                        let hi = match self.bump() {
                            Some('\\') => match self.parse_escape()? {
                                CharClass::Literal(h) => h,
                                _ => {
                                    return Err(ParseSchemaError::new(
                                        "class shorthand cannot end a range",
                                    ))
                                }
                            },
                            Some(h) => h,
                            None => {
                                return Err(ParseSchemaError::new(
                                    "unterminated character class",
                                ))
                            }
                        };
                        if hi < c {
                            return Err(ParseSchemaError::new(format!(
                                "invalid range {c}-{hi}"
                            )));
                        }
                        ranges.push((c, hi));
                    } else {
                        chars.push(c);
                    }
                }
            }
        }
        Ok(Node::Char(CharClass::Set { negated, chars, ranges }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(p: &str, s: &str) -> bool {
        Regex::parse(p).unwrap().is_match(s)
    }

    #[test]
    fn literals_are_anchored() {
        assert!(m("abc", "abc"));
        assert!(!m("abc", "xabc"));
        assert!(!m("abc", "abcx"));
        assert!(!m("abc", "ab"));
    }

    #[test]
    fn quantifiers() {
        assert!(m("a*", ""));
        assert!(m("a*", "aaaa"));
        assert!(m("a+", "a"));
        assert!(!m("a+", ""));
        assert!(m("a?b", "b"));
        assert!(m("a?b", "ab"));
        assert!(!m("a?b", "aab"));
    }

    #[test]
    fn counted_repetition() {
        assert!(m("a{3}", "aaa"));
        assert!(!m("a{3}", "aa"));
        assert!(m("a{2,4}", "aaa"));
        assert!(!m("a{2,4}", "aaaaa"));
        assert!(m("a{2,}", "aaaaaaa"));
        assert!(!m("a{2,}", "a"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("cat|dog", "dog"));
        assert!(m("(ab)+", "ababab"));
        assert!(!m("(ab)+", "aba"));
        assert!(m("a(b|c)d", "acd"));
    }

    #[test]
    fn classes_and_escapes() {
        assert!(m(r"\d{4}-\d{2}-\d{2}", "2002-02-14"));
        assert!(!m(r"\d{4}-\d{2}-\d{2}", "02-02-14"));
        assert!(m(r"[a-z]+", "gnutella"));
        assert!(!m(r"[a-z]+", "Gnutella"));
        assert!(m(r"[A-Za-z ]+", "Abstract Factory"));
        assert!(m(r"[^0-9]+", "abc"));
        assert!(!m(r"[^0-9]+", "a1c"));
        assert!(m(r"\w+\s\w+", "hello world"));
        assert!(m(r"a\.b", "a.b"));
        assert!(!m(r"a\.b", "axb"));
        assert!(m("a.c", "axc"));
    }

    #[test]
    fn dash_at_class_end_is_literal() {
        assert!(m(r"[a-]+", "a-a-"));
    }

    #[test]
    fn zero_width_star_terminates() {
        // must not hang
        assert!(m("(a?)*b", "b"));
        assert!(m("(a?)*b", "aab"));
    }

    #[test]
    fn parse_errors() {
        assert!(Regex::parse("(ab").is_err());
        assert!(Regex::parse("[ab").is_err());
        assert!(Regex::parse("*a").is_err());
        assert!(Regex::parse("a{3,1}").is_err());
        assert!(Regex::parse("a{x}").is_err());
        assert!(Regex::parse("a)").is_err());
    }

    #[test]
    fn uri_like_pattern() {
        let re = Regex::parse(r"(http|file)://\S+").unwrap();
        assert!(re.is_match("http://up2p.example/schema.xsd"));
        assert!(re.is_match("file://patterns/observer.xml"));
        assert!(!re.is_match("ftp://other"));
    }

    #[test]
    fn empty_pattern_matches_empty_only() {
        assert!(m("", ""));
        assert!(!m("", "a"));
    }
}
