//! Schema round-trip over the committed benchmark artifacts: every
//! `BENCH_*.json` at the repo root — the E8/E9/E10/E11 files from
//! earlier PRs plus E12's durability report — must parse through
//! [`BenchReport::from_json`] and re-serialize byte-identically. This
//! pins the artifact schema: a writer change that CI's trajectory
//! tooling wouldn't understand fails here before it lands.

use up2p_sim::BenchReport;

const ARTIFACTS: &[(&str, &str, &[&str])] = &[
    (
        "BENCH_e8_index_scale.json",
        "e8_index_scale",
        &["objects", "insert_per_sec"],
    ),
    (
        "BENCH_e9_search_scale.json",
        "e9_search_scale",
        &["objects", "peers"],
    ),
    (
        "BENCH_e10_guided_search.json",
        "e10_guided_search",
        &["gnutella_guided_reduction", "fasttrack_guided_reduction"],
    ),
    (
        "BENCH_e11_des_scale.json",
        "e11_des_scale",
        &["peers_small", "peers_large"],
    ),
    (
        "BENCH_e12_durability.json",
        "e12_durability",
        &[
            "objects",
            "publish_durable_per_sec",
            "publish_fsync_each_per_sec",
            "compact_ms",
            "recovery_ms",
            "xml_rebuild_ms",
            "recovery_speedup",
            "durable_bytes",
            "xml_bytes",
        ],
    ),
];

fn artifact_path(file: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join(file)
}

#[test]
fn committed_bench_artifacts_round_trip() {
    for (file, name, required) in ARTIFACTS {
        let path = artifact_path(file);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing committed artifact {}: {e}", path.display()));
        let report = BenchReport::from_json(&text)
            .unwrap_or_else(|| panic!("{file}: committed JSON does not parse"));
        assert_eq!(report.name(), *name, "{file}: report name drifted");
        assert!(
            report.metrics().count() >= required.len(),
            "{file}: expected at least {} metrics",
            required.len()
        );
        for key in *required {
            assert!(
                report.get(key).is_some(),
                "{file}: required metric '{key}' missing — scenario key schema drifted"
            );
        }
        assert_eq!(report.to_json(), text, "{file}: to_json(from_json(x)) != x");
    }
}

#[test]
fn e12_artifact_shows_full_scale_recovery_win() {
    let text = std::fs::read_to_string(artifact_path("BENCH_e12_durability.json"))
        .expect("BENCH_e12_durability.json is committed at the repo root");
    let report = BenchReport::from_json(&text).expect("parses");
    assert_eq!(report.get("objects").unwrap() as usize, 100_000, "full-scale run recorded");
    let speedup = report.get("recovery_speedup").unwrap();
    assert!(
        speedup >= 5.0,
        "segment recovery must be ≥5x faster than the XML rebuild at 100k, got {speedup:.2}x"
    );
    let torn = report.get("recovery_ms").unwrap();
    assert!(torn > 0.0 && torn.is_finite());
}

#[test]
fn e11_artifact_reports_scale_grid() {
    let text = std::fs::read_to_string(artifact_path("BENCH_e11_des_scale.json"))
        .expect("BENCH_e11_des_scale.json is committed at the repo root");
    let report = BenchReport::from_json(&text).expect("parses");
    let small = report.get("peers_small").unwrap() as usize;
    let large = report.get("peers_large").unwrap() as usize;
    assert_eq!((small, large), (10_000, 100_000), "full-scale grid recorded");
    // every protocol has throughput + cost + success + footprint at both sizes
    for peers in [small, large] {
        for proto in ["napster", "gnutella", "fasttrack"] {
            for metric in ["events_per_sec", "msgs_per_query", "success_rate", "bytes_per_peer"] {
                let key = format!("{proto}_{peers}_{metric}");
                let v = report.get(&key).unwrap_or_else(|| panic!("missing {key}"));
                assert!(v.is_finite() && v >= 0.0, "{key} = {v}");
            }
        }
    }
}
