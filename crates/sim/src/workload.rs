//! Workload generation: Zipf popularity and query streams.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Zipf(s) sampler over ranks `0..n` via inverse-CDF lookup.
///
/// P2P request popularity is classically Zipf-like; all object- and
/// community-popularity draws in the experiments use this.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `s` (s = 0 is
    /// uniform; s ≈ 1 matches measured file-sharing workloads).
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "zipf over empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` when the domain is a single rank.
    pub fn is_empty(&self) -> bool {
        false // construction requires n > 0
    }

    /// Draws a rank (0 = most popular).
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

/// Deterministic RNG for a named experiment phase — experiments derive
/// all randomness from (seed, label) so every table regenerates exactly.
pub fn rng_for(seed: u64, label: &str) -> StdRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(seed ^ h)
}

/// Splits a corpus across peers: object `i` is assigned
/// `replicas` distinct provider peers chosen deterministically.
///
/// Placement is a prefix of a per-object Fisher–Yates shuffle, and the
/// shuffle consumes the same number of RNG draws regardless of
/// `replicas`. Both together make placements *nested*: given the same
/// rng seed, the providers for `replicas = r` are a subset of those for
/// `replicas = r' > r`. The replication experiment (E5) relies on this
/// to compare replica counts under common random numbers, which turns
/// availability monotonicity from a statistical tendency into a
/// per-trial invariant.
pub fn assign_providers(
    objects: usize,
    peers: usize,
    replicas: usize,
    rng: &mut StdRng,
) -> Vec<Vec<u32>> {
    let replicas = replicas.min(peers);
    (0..objects)
        .map(|_| {
            let mut order: Vec<u32> = (0..peers as u32).collect();
            for i in (1..peers).rev() {
                let j = rng.gen_range(0..i + 1);
                order.swap(i, j);
            }
            order.truncate(replicas);
            order
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_normalized_and_skewed() {
        let z = Zipf::new(100, 1.0);
        assert_eq!(z.len(), 100);
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(z.pmf(0) > z.pmf(10));
        assert!(z.pmf(10) > z.pmf(90));
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn zipf_sampling_matches_pmf_roughly() {
        let z = Zipf::new(20, 1.0);
        let mut rng = rng_for(7, "zipf-test");
        let mut counts = [0usize; 20];
        let draws = 20_000;
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        let freq0 = counts[0] as f64 / draws as f64;
        assert!((freq0 - z.pmf(0)).abs() < 0.02, "freq {freq0} vs pmf {}", z.pmf(0));
        assert!(counts[0] > counts[10]);
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn zipf_rejects_empty() {
        Zipf::new(0, 1.0);
    }

    #[test]
    fn rng_for_is_label_sensitive_and_reproducible() {
        let mut a1 = rng_for(1, "phase-a");
        let mut a2 = rng_for(1, "phase-a");
        let mut b = rng_for(1, "phase-b");
        let x1: u64 = a1.gen();
        let x2: u64 = a2.gen();
        let y: u64 = b.gen();
        assert_eq!(x1, x2);
        assert_ne!(x1, y);
    }

    #[test]
    fn provider_assignment_distinct_and_bounded() {
        let mut rng = rng_for(3, "assign");
        let assignment = assign_providers(50, 10, 3, &mut rng);
        assert_eq!(assignment.len(), 50);
        for providers in &assignment {
            assert_eq!(providers.len(), 3);
            let mut sorted = providers.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "providers must be distinct");
            assert!(providers.iter().all(|&p| p < 10));
        }
        // replicas clamped to peer count
        let clamped = assign_providers(5, 2, 9, &mut rng);
        assert!(clamped.iter().all(|ps| ps.len() == 2));
    }
}
