//! Small statistics helpers for experiment reporting.

/// Online accumulator for mean/min/max/percentiles of a series.
#[derive(Debug, Clone, Default)]
pub struct Series {
    values: Vec<f64>,
}

impl Series {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, v: f64) {
        self.values.push(v);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean (0 for an empty series).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Minimum (0 for an empty series).
    pub fn min(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Maximum (0 for an empty series).
    pub fn max(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// p-th percentile by nearest-rank (p in [0,100]; 0 for empty).
    pub fn percentile(&self, p: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Median.
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }
}

/// Precision / recall / F1 of a retrieved set against a relevant set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetrievalQuality {
    /// |retrieved ∩ relevant| / |retrieved| (1 when nothing retrieved and
    /// nothing relevant).
    pub precision: f64,
    /// |retrieved ∩ relevant| / |relevant| (1 when nothing relevant).
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

/// Computes retrieval quality from id sets.
pub fn retrieval_quality<T: PartialEq>(retrieved: &[T], relevant: &[T]) -> RetrievalQuality {
    let tp = retrieved.iter().filter(|r| relevant.contains(r)).count() as f64;
    let precision = if retrieved.is_empty() {
        if relevant.is_empty() {
            1.0
        } else {
            0.0
        }
    } else {
        tp / retrieved.len() as f64
    };
    let recall = if relevant.is_empty() { 1.0 } else { tp / relevant.len() as f64 };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    RetrievalQuality { precision, recall, f1 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_statistics() {
        let mut s = Series::new();
        for v in [4.0, 1.0, 3.0, 2.0, 5.0] {
            s.push(v);
        }
        assert_eq!(s.len(), 5);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.percentile(100.0), 5.0);
        assert_eq!(s.percentile(0.0), 1.0);
    }

    #[test]
    fn empty_series_is_zeroes() {
        let s = Series::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.median(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn quality_perfect_and_partial() {
        let q = retrieval_quality(&[1, 2, 3], &[1, 2, 3]);
        assert_eq!((q.precision, q.recall, q.f1), (1.0, 1.0, 1.0));
        let q = retrieval_quality(&[1, 2, 9, 8], &[1, 2, 3, 4]);
        assert!((q.precision - 0.5).abs() < 1e-12);
        assert!((q.recall - 0.5).abs() < 1e-12);
        assert!((q.f1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quality_edge_cases() {
        let q = retrieval_quality::<u32>(&[], &[]);
        assert_eq!((q.precision, q.recall, q.f1), (1.0, 1.0, 1.0));
        let q = retrieval_quality(&[], &[1]);
        assert_eq!(q.recall, 0.0);
        assert_eq!(q.precision, 0.0);
        let q = retrieval_quality(&[1], &[]);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.precision, 0.0);
        assert_eq!(q.f1, 0.0);
    }
}
