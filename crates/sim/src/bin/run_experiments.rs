//! Regenerates every experiment table (E1–E7).
//!
//! ```text
//! cargo run -p up2p-sim --release --bin run_experiments            # ASCII to stdout
//! cargo run -p up2p-sim --release --bin run_experiments -- --md    # markdown (EXPERIMENTS.md body)
//! cargo run -p up2p-sim --release --bin run_experiments -- --smoke # reduced sizes
//! ```

use up2p_sim::{run_all, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("run_experiments — regenerate the U-P2P experiment tables (E1-E7)");
        println!();
        println!("USAGE:");
        println!("    cargo run -p up2p-sim --release --bin run_experiments [-- FLAGS]");
        println!();
        println!("FLAGS:");
        println!("    --md       emit markdown tables (EXPERIMENTS.md body) instead of ASCII");
        println!("    --smoke    reduced sizes for a quick sanity run");
        println!("    -h, --help print this help");
        return;
    }
    if let Some(unknown) = args.iter().find(|a| !matches!(a.as_str(), "--md" | "--smoke")) {
        eprintln!("error: unknown flag '{unknown}' (try --help)");
        std::process::exit(2);
    }
    let markdown = args.iter().any(|a| a == "--md");
    let scale = if args.iter().any(|a| a == "--smoke") { Scale::Smoke } else { Scale::Full };
    let seed = 42;

    eprintln!("running all scenarios at {scale:?} scale (seed {seed}) ...");
    let tables = run_all(scale, seed);
    for table in tables {
        if markdown {
            println!("{}\n", table.to_markdown());
        } else {
            println!("{table}");
        }
    }
}
