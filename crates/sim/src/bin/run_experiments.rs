//! Regenerates experiment tables (E1–E12).
//!
//! ```text
//! cargo run -p up2p-sim --release --bin run_experiments             # all, ASCII
//! cargo run -p up2p-sim --release --bin run_experiments -- --md     # markdown (EXPERIMENTS.md body)
//! cargo run -p up2p-sim --release --bin run_experiments -- --smoke  # reduced sizes
//! cargo run -p up2p-sim --release --bin run_experiments -- --scenario e8 --quick
//! cargo run -p up2p-sim --release --bin run_experiments -- --scenario e9_search_scale --quick
//! cargo run -p up2p-sim --release --bin run_experiments -- --scenario e10_guided_search
//! cargo run -p up2p-sim --release --bin run_experiments -- --scenario e11_des_scale --quick
//! cargo run -p up2p-sim --release --bin run_experiments -- --scenario e12_durability --quick
//! ```
//!
//! Running E8–E12 (alone or as part of the full run) also writes the
//! scenario's JSON metrics to `BENCH_e8_index_scale.json` /
//! `BENCH_e9_search_scale.json` / `BENCH_e10_guided_search.json` /
//! `BENCH_e11_des_scale.json` / `BENCH_e12_durability.json` (override
//! with `--out PATH` on a single-scenario run) — the perf-trajectory
//! artifacts CI uploads.

use up2p_sim::{
    e10_guided_search_report, e11_des_scale_report, e12_durability_report, e1_pipeline,
    e2_generation, e3_discovery, e4_metadata, e5_replication, e6_dedup_ablation, e6_protocols,
    e6_topologies, e6_ttl_sweep, e7_indexing, e8_index_scale_report, e9_search_scale_report,
    Scale, Table,
};

const E8_REPORT_DEFAULT: &str = "BENCH_e8_index_scale.json";
const E9_REPORT_DEFAULT: &str = "BENCH_e9_search_scale.json";
const E10_REPORT_DEFAULT: &str = "BENCH_e10_guided_search.json";
const E11_REPORT_DEFAULT: &str = "BENCH_e11_des_scale.json";
const E12_REPORT_DEFAULT: &str = "BENCH_e12_durability.json";

fn print_help() {
    println!("run_experiments — regenerate the U-P2P experiment tables (E1-E12)");
    println!();
    println!("USAGE:");
    println!("    cargo run -p up2p-sim --release --bin run_experiments [-- FLAGS]");
    println!();
    println!("FLAGS:");
    println!("    --md              emit markdown tables (EXPERIMENTS.md body) instead of ASCII");
    println!("    --smoke, --quick  reduced sizes for a quick sanity run");
    println!("    --scenario NAME   run one scenario only (e1..e12; e12_durability works too)");
    println!("    --out PATH        where the scenario JSON report goes on a single");
    println!("                      --scenario e8..e12 run (defaults {E8_REPORT_DEFAULT} /");
    println!("                      {E9_REPORT_DEFAULT} / {E10_REPORT_DEFAULT} /");
    println!("                      {E11_REPORT_DEFAULT} / {E12_REPORT_DEFAULT})");
    println!("    -h, --help        print this help");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return;
    }
    let mut markdown = false;
    let mut scale = Scale::Full;
    let mut scenario: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--md" => markdown = true,
            "--smoke" | "--quick" => scale = Scale::Smoke,
            "--scenario" => match it.next() {
                Some(name) => scenario = Some(name.clone()),
                None => {
                    eprintln!("error: --scenario needs a name (e1..e12)");
                    std::process::exit(2);
                }
            },
            "--out" => match it.next() {
                Some(path) => out_path = Some(path.clone()),
                None => {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                }
            },
            unknown => {
                eprintln!("error: unknown flag '{unknown}' (try --help)");
                std::process::exit(2);
            }
        }
    }
    let seed = 42;

    // --out redirects the report only on a single-scenario run; a full
    // run writes every report to its default path (honoring --out there
    // would make E9 clobber E8's file)
    let single_scenario = scenario.is_some();
    if out_path.is_some() && !single_scenario {
        eprintln!("warning: --out is ignored without --scenario; using default report paths");
    }
    let write_report = |report: &up2p_sim::BenchReport, default_path: &str| {
        let path = match (&out_path, single_scenario) {
            (Some(path), true) => path.as_str(),
            _ => default_path,
        };
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            eprintln!("wrote {path}");
        }
    };
    let run_e8 = |tables: &mut Vec<Table>| {
        let (table, report) = e8_index_scale_report(scale, seed);
        write_report(&report, E8_REPORT_DEFAULT);
        tables.push(table);
    };
    let run_e9 = |tables: &mut Vec<Table>| {
        let (table, report) = e9_search_scale_report(scale, seed);
        write_report(&report, E9_REPORT_DEFAULT);
        tables.push(table);
    };
    let run_e10 = |tables: &mut Vec<Table>| {
        let (table, report) = e10_guided_search_report(scale, seed);
        write_report(&report, E10_REPORT_DEFAULT);
        tables.push(table);
    };
    let run_e11 = |tables: &mut Vec<Table>| {
        let (table, report) = e11_des_scale_report(scale, seed);
        write_report(&report, E11_REPORT_DEFAULT);
        tables.push(table);
    };
    let run_e12 = |tables: &mut Vec<Table>| {
        let (table, report) = e12_durability_report(scale, seed);
        write_report(&report, E12_REPORT_DEFAULT);
        tables.push(table);
    };

    let mut tables = Vec::new();
    match scenario.as_deref() {
        None => {
            // same order as run_all, with E8–E12 run through their
            // report paths so the JSON artifacts are written on full
            // runs too
            eprintln!("running all scenarios at {scale:?} scale (seed {seed}) ...");
            tables.push(e1_pipeline());
            tables.push(e2_generation(&[4, 8, 16, 32, 64]));
            tables.push(e3_discovery(scale, seed));
            tables.push(e4_metadata());
            tables.push(e5_replication(scale, seed));
            tables.push(e6_protocols(scale, seed));
            tables.push(e6_ttl_sweep(scale, seed));
            tables.push(e6_dedup_ablation(scale, seed));
            tables.push(e6_topologies(scale, seed));
            tables.push(e7_indexing());
            run_e8(&mut tables);
            run_e9(&mut tables);
            run_e10(&mut tables);
            run_e11(&mut tables);
            run_e12(&mut tables);
        }
        Some("e1") => tables.push(e1_pipeline()),
        Some("e2") => tables.push(e2_generation(&[4, 8, 16, 32, 64])),
        Some("e3") => tables.push(e3_discovery(scale, seed)),
        Some("e4") => tables.push(e4_metadata()),
        Some("e5") => tables.push(e5_replication(scale, seed)),
        Some("e6") => {
            tables.push(e6_protocols(scale, seed));
            tables.push(e6_ttl_sweep(scale, seed));
            tables.push(e6_dedup_ablation(scale, seed));
            tables.push(e6_topologies(scale, seed));
        }
        Some("e7") => tables.push(e7_indexing()),
        Some("e8" | "e8_index_scale") => run_e8(&mut tables),
        Some("e9" | "e9_search_scale") => run_e9(&mut tables),
        Some("e10" | "e10_guided_search") => run_e10(&mut tables),
        Some("e11" | "e11_des_scale") => run_e11(&mut tables),
        Some("e12" | "e12_durability") => run_e12(&mut tables),
        Some(other) => {
            eprintln!("error: unknown scenario '{other}' (expected e1..e12)");
            std::process::exit(2);
        }
    }
    for table in tables {
        if markdown {
            println!("{}\n", table.to_markdown());
        } else {
            println!("{table}");
        }
    }
}
