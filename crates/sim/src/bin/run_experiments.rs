//! Regenerates experiment tables (E1–E8).
//!
//! ```text
//! cargo run -p up2p-sim --release --bin run_experiments             # all, ASCII
//! cargo run -p up2p-sim --release --bin run_experiments -- --md     # markdown (EXPERIMENTS.md body)
//! cargo run -p up2p-sim --release --bin run_experiments -- --smoke  # reduced sizes
//! cargo run -p up2p-sim --release --bin run_experiments -- --scenario e8 --quick
//! ```
//!
//! Running E8 (alone or as part of the full run) also writes its JSON
//! metrics to `BENCH_e8_index_scale.json` (override with `--out PATH`) —
//! the perf-trajectory artifact CI uploads.

use up2p_sim::{
    e1_pipeline, e2_generation, e3_discovery, e4_metadata, e5_replication, e6_dedup_ablation,
    e6_protocols, e6_topologies, e6_ttl_sweep, e7_indexing, e8_index_scale_report, Scale, Table,
};

const E8_REPORT_DEFAULT: &str = "BENCH_e8_index_scale.json";

fn print_help() {
    println!("run_experiments — regenerate the U-P2P experiment tables (E1-E8)");
    println!();
    println!("USAGE:");
    println!("    cargo run -p up2p-sim --release --bin run_experiments [-- FLAGS]");
    println!();
    println!("FLAGS:");
    println!("    --md              emit markdown tables (EXPERIMENTS.md body) instead of ASCII");
    println!("    --smoke, --quick  reduced sizes for a quick sanity run");
    println!("    --scenario NAME   run one scenario only (e1..e8)");
    println!("    --out PATH        where the E8 JSON report goes (default {E8_REPORT_DEFAULT})");
    println!("    -h, --help        print this help");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return;
    }
    let mut markdown = false;
    let mut scale = Scale::Full;
    let mut scenario: Option<String> = None;
    let mut out_path = E8_REPORT_DEFAULT.to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--md" => markdown = true,
            "--smoke" | "--quick" => scale = Scale::Smoke,
            "--scenario" => match it.next() {
                Some(name) => scenario = Some(name.clone()),
                None => {
                    eprintln!("error: --scenario needs a name (e1..e8)");
                    std::process::exit(2);
                }
            },
            "--out" => match it.next() {
                Some(path) => out_path = path.clone(),
                None => {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                }
            },
            unknown => {
                eprintln!("error: unknown flag '{unknown}' (try --help)");
                std::process::exit(2);
            }
        }
    }
    let seed = 42;

    let run_e8 = |tables: &mut Vec<Table>| {
        let (table, report) = e8_index_scale_report(scale, seed);
        if let Err(e) = std::fs::write(&out_path, report.to_json()) {
            eprintln!("warning: could not write {out_path}: {e}");
        } else {
            eprintln!("wrote {out_path}");
        }
        tables.push(table);
    };

    let mut tables = Vec::new();
    match scenario.as_deref() {
        None => {
            // same order as run_all, with E8 run through run_e8 so the
            // JSON report is written on full runs too (and E8 only once)
            eprintln!("running all scenarios at {scale:?} scale (seed {seed}) ...");
            tables.push(e1_pipeline());
            tables.push(e2_generation(&[4, 8, 16, 32, 64]));
            tables.push(e3_discovery(scale, seed));
            tables.push(e4_metadata());
            tables.push(e5_replication(scale, seed));
            tables.push(e6_protocols(scale, seed));
            tables.push(e6_ttl_sweep(scale, seed));
            tables.push(e6_dedup_ablation(scale, seed));
            tables.push(e6_topologies(scale, seed));
            tables.push(e7_indexing());
            run_e8(&mut tables);
        }
        Some("e1") => tables.push(e1_pipeline()),
        Some("e2") => tables.push(e2_generation(&[4, 8, 16, 32, 64])),
        Some("e3") => tables.push(e3_discovery(scale, seed)),
        Some("e4") => tables.push(e4_metadata()),
        Some("e5") => tables.push(e5_replication(scale, seed)),
        Some("e6") => {
            tables.push(e6_protocols(scale, seed));
            tables.push(e6_ttl_sweep(scale, seed));
            tables.push(e6_dedup_ablation(scale, seed));
            tables.push(e6_topologies(scale, seed));
        }
        Some("e7") => tables.push(e7_indexing()),
        Some("e8") => run_e8(&mut tables),
        Some(other) => {
            eprintln!("error: unknown scenario '{other}' (expected e1..e8)");
            std::process::exit(2);
        }
    }
    for table in tables {
        if markdown {
            println!("{}\n", table.to_markdown());
        } else {
            println!("{table}");
        }
    }
}
