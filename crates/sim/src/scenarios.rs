//! The experiment scenarios E1–E12 (see DESIGN.md §4 for the mapping to
//! the paper's figures and claims). Each function regenerates the
//! table(s) recorded in EXPERIMENTS.md; all randomness is seeded, so runs
//! are exactly reproducible.

use crate::corpus::{
    self, mp3_community, pattern_community, pattern_filename, song_filename, GOF_PATTERNS,
};
use crate::experiment::{pattern_world, World};
use crate::metrics::{retrieval_quality, Series};
use crate::report::{fnum, BenchReport, Table};
use crate::workload::{rng_for, Zipf};
use rand::Rng;
use std::time::Instant;
use up2p_core::{Community, FormKind, FormModel, PayloadPlane, Servent, SharedObject};
use up2p_net::{churn, PeerId, ProtocolKind};
use up2p_schema::{FieldKind, SchemaBuilder};
use up2p_store::{tokenize, Query, Repository};

/// Scale knob: scenario sizes are divided by this for fast test runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full sizes (benches, EXPERIMENTS.md).
    Full,
    /// Reduced sizes (unit/integration tests).
    Smoke,
}

impl Scale {
    fn peers(self, full: usize) -> usize {
        match self {
            Scale::Full => full,
            Scale::Smoke => (full / 4).max(8),
        }
    }

    fn queries(self, full: usize) -> usize {
        match self {
            Scale::Full => full,
            Scale::Smoke => (full / 10).max(5),
        }
    }
}

// ---------------------------------------------------------------------
// E1 — Fig. 1: the generative shared-object pipeline
// ---------------------------------------------------------------------

/// E1: runs the full Fig. 1 pipeline (schema → create form → instance →
/// validate → index → view) over the GoF corpus and reports per-stage
/// timing and throughput.
pub fn e1_pipeline() -> Table {
    let mut t = Table::new(
        "E1 (Fig. 1): generative pipeline over the GoF corpus (23 objects)",
        &["stage", "total ms", "per object us", "output"],
    );
    let started = Instant::now();
    let community = pattern_community();
    let parse_ms = started.elapsed().as_secs_f64() * 1e3;
    t.row(["schema parse + community build", &fnum(parse_ms), &fnum(parse_ms * 1e3), "1 community"]);

    let started = Instant::now();
    let form = FormModel::derive(&community, FormKind::Create);
    let derive_ms = started.elapsed().as_secs_f64() * 1e3;
    t.row([
        "create-form derivation".to_string(),
        fnum(derive_ms),
        fnum(derive_ms * 1e3),
        format!("{} fields", form.fields.len()),
    ]);

    let started = Instant::now();
    let mut objects = Vec::new();
    for p in &GOF_PATTERNS {
        let doc = form.fill("pattern", &corpus::pattern_values(p)).expect("valid");
        community.validate(&doc).expect("valid");
        objects.push(SharedObject::new(&community.id, doc, Vec::new()));
    }
    let create_ms = started.elapsed().as_secs_f64() * 1e3;
    t.row([
        "fill + validate".to_string(),
        fnum(create_ms),
        fnum(create_ms * 1e3 / 23.0),
        format!("{} objects", objects.len()),
    ]);

    let started = Instant::now();
    let mut repo = Repository::new();
    let paths = community.indexed_paths();
    for o in &objects {
        repo.insert_doc(&community.id, o.doc.clone(), &paths);
    }
    let index_ms = started.elapsed().as_secs_f64() * 1e3;
    let stats = repo.index_stats();
    t.row([
        "metadata indexing".to_string(),
        fnum(index_ms),
        fnum(index_ms * 1e3 / 23.0),
        format!("{} token postings", stats.token_postings),
    ]);

    let started = Instant::now();
    let mut html_bytes = 0usize;
    for o in &objects {
        html_bytes += up2p_core::stylesheets::render_view(&o.doc, None).expect("renders").len();
    }
    let view_ms = started.elapsed().as_secs_f64() * 1e3;
    t.row([
        "XSLT view rendering".to_string(),
        fnum(view_ms),
        fnum(view_ms * 1e3 / 23.0),
        format!("{html_bytes} HTML bytes"),
    ]);

    let started = Instant::now();
    let queries = ["observer", "factory", "interface", "algorithm", "state"];
    let mut hits = 0;
    for q in queries {
        hits += repo.search(None, &Query::any_keyword(q)).len();
    }
    let query_ms = started.elapsed().as_secs_f64() * 1e3;
    t.row([
        "indexed keyword queries".to_string(),
        fnum(query_ms),
        fnum(query_ms * 1e3 / queries.len() as f64),
        format!("{hits} hits / {} queries", queries.len()),
    ]);
    t
}

// ---------------------------------------------------------------------
// E2 — Fig. 2: default stylesheets work on any community schema
// ---------------------------------------------------------------------

/// E2: generates schemas of increasing width, derives and renders both
/// forms and a view for each, reporting cost vs schema size. All sizes
/// must succeed — that is the Fig. 2 "operates on any community schema"
/// claim.
pub fn e2_generation(sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "E2 (Fig. 2): interface generation vs schema size",
        &["fields", "xsd bytes", "parse us", "form us", "create-form HTML bytes", "render us"],
    );
    for &n in sizes {
        let mut b = SchemaBuilder::new("object");
        for i in 0..n {
            let f = match i % 4 {
                0 => FieldKind::text(format!("text{i}")).searchable(),
                1 => FieldKind::integer(format!("num{i}")),
                2 => FieldKind::enumeration(format!("enum{i}"), ["a", "b", "c"]).searchable(),
                _ => FieldKind::uri(format!("uri{i}")),
            };
            b.field(f);
        }
        let xsd = b.to_xsd();

        let started = Instant::now();
        let community = Community::new("gen", "generated", "k", "c", "", &xsd).expect("valid");
        let parse_us = started.elapsed().as_secs_f64() * 1e6;

        let started = Instant::now();
        let form = FormModel::derive(&community, FormKind::Create);
        let form_us = started.elapsed().as_secs_f64() * 1e6;
        assert_eq!(form.fields.len(), n, "every field surfaces on the form");

        let doc = form.to_document();
        let started = Instant::now();
        let html = up2p_core::stylesheets::render_form(&doc, None).expect("default renders");
        let render_us = started.elapsed().as_secs_f64() * 1e6;

        t.row([
            n.to_string(),
            xsd.len().to_string(),
            fnum(parse_us),
            fnum(form_us),
            html.len().to_string(),
            fnum(render_us),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// E3 — Fig. 3: community discovery as object search
// ---------------------------------------------------------------------

/// E3: publishes `communities` community objects into the root community
/// of a fabric of `peers`, then issues Zipf-popular discovery queries;
/// reports success rate, messages and latency per protocol.
pub fn e3_discovery(scale: Scale, seed: u64) -> Table {
    let mut t = Table::new(
        "E3 (Fig. 3): community discovery via the root community",
        &["protocol", "peers", "communities", "queries", "success", "msgs/query", "mean ms", "p95 ms"],
    );
    for kind in [ProtocolKind::Napster, ProtocolKind::Gnutella, ProtocolKind::FastTrack] {
        for &(peers, n_comms) in &[(64usize, 16usize), (256, 16), (256, 64)] {
            let peers = scale.peers(peers);
            let n_comms = n_comms.min(peers);
            let n_queries = scale.queries(200);
            let mut world = World::new(kind, peers, seed);
            let mut rng = rng_for(seed, "e3");

            // each community gets a distinctive keyword and a publisher
            let mut keywords = Vec::new();
            for c in 0..n_comms {
                let keyword = format!("domain{c:03}");
                let mut b = SchemaBuilder::new("item");
                b.field(FieldKind::text("name").searchable());
                let community = Community::from_builder(
                    &format!("community-{c}"),
                    &format!("resources about {keyword}"),
                    &keyword,
                    "generated",
                    kind.schema_value(),
                    &b,
                )
                .expect("valid");
                let publisher = rng.gen_range(0..peers);
                world.servents[publisher]
                    .publish_community(&mut *world.net, &mut world.plane, &community)
                    .expect("publish");
                keywords.push(keyword);
            }

            let zipf = Zipf::new(n_comms, 1.0);
            let mut found = 0usize;
            let mut msgs = Series::new();
            let mut lat = Series::new();
            world.net.reset_stats();
            for q in 0..n_queries {
                let target = zipf.sample(&mut rng);
                let origin = (q * 7 + 3) % peers;
                let out = world.servents[origin]
                    .discover_communities(&mut *world.net, &Query::any_keyword(&keywords[target]))
                    .expect("root member");
                if !out.hits.is_empty() {
                    found += 1;
                }
                msgs.push(out.messages as f64);
                lat.push(out.latency as f64 / 1000.0);
            }
            t.row([
                kind.to_string(),
                peers.to_string(),
                n_comms.to_string(),
                n_queries.to_string(),
                fnum(found as f64 / n_queries as f64),
                fnum(msgs.mean()),
                fnum(lat.mean()),
                fnum(lat.percentile(95.0)),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------
// E4 — §II: metadata search vs filename matching
// ---------------------------------------------------------------------

/// Derives E4 query terms from a corpus: frequent metadata tokens of at
/// least five characters (deterministic).
fn query_terms(fields_per_object: &[Vec<(String, String)>], count: usize) -> Vec<String> {
    use std::collections::BTreeMap;
    let mut freq: BTreeMap<String, usize> = BTreeMap::new();
    for fields in fields_per_object {
        for (_, value) in fields {
            for tok in tokenize(value) {
                if tok.len() >= 5 {
                    *freq.entry(tok).or_insert(0) += 1;
                }
            }
        }
    }
    let mut terms: Vec<(String, usize)> = freq.into_iter().collect();
    terms.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    terms.into_iter().take(count).map(|(t, _)| t).collect()
}

/// E4: precision/recall/F1 of schema-driven metadata search vs the
/// filename-substring search of Napster-era clients, on both corpora.
/// Ground truth: an object is relevant to a term when any metadata field
/// contains it.
pub fn e4_metadata() -> Table {
    let mut t = Table::new(
        "E4 (§II): metadata search vs filename matching",
        &["corpus", "method", "queries", "precision", "recall", "F1"],
    );

    // corpus 1: design patterns (filenames carry only the name)
    {
        let community = pattern_community();
        let paths = community.indexed_paths();
        let mut repo = Repository::new();
        let mut filenames = Vec::new();
        let mut all_fields = Vec::new();
        let mut ids = Vec::new();
        for p in &GOF_PATTERNS {
            let form = FormModel::derive(&community, FormKind::Create);
            let doc = form.fill("pattern", &corpus::pattern_values(p)).expect("valid");
            let fields = Repository::extract_fields(&doc, &paths);
            all_fields.push(fields);
            filenames.push(pattern_filename(p));
            ids.push(repo.insert_doc(&community.id, doc, &paths));
        }
        let terms = query_terms(&all_fields, 20);
        push_quality_rows(&mut t, "patterns", &repo, &ids, &filenames, &all_fields, &terms);
    }

    // corpus 2: MP3s (filenames carry artist + title — richer baseline)
    {
        let community = mp3_community();
        let paths = community.indexed_paths();
        let songs = corpus::songs(100);
        let mut repo = Repository::new();
        let mut filenames = Vec::new();
        let mut all_fields = Vec::new();
        let mut ids = Vec::new();
        let form = FormModel::derive(&community, FormKind::Create);
        for s in &songs {
            let year = s.year.to_string();
            let doc = form
                .fill(
                    "song",
                    &[
                        ("title", s.title.as_str()),
                        ("artist", s.artist.as_str()),
                        ("album", s.album.as_str()),
                        ("genre", s.genre.as_str()),
                        ("year", year.as_str()),
                        ("audio", "up2p:attachment:x"),
                    ],
                )
                .expect("valid");
            let fields = Repository::extract_fields(&doc, &paths);
            all_fields.push(fields);
            filenames.push(song_filename(s));
            ids.push(repo.insert_doc(&community.id, doc, &paths));
        }
        let terms = query_terms(&all_fields, 20);
        push_quality_rows(&mut t, "mp3", &repo, &ids, &filenames, &all_fields, &terms);
    }
    t
}

fn push_quality_rows(
    t: &mut Table,
    corpus_name: &str,
    repo: &Repository,
    ids: &[up2p_store::ResourceId],
    filenames: &[String],
    all_fields: &[Vec<(String, String)>],
    terms: &[String],
) {
    let mut meta = (Series::new(), Series::new(), Series::new());
    let mut file = (Series::new(), Series::new(), Series::new());
    for term in terms {
        // ground truth: metadata contains the term as substring
        let relevant: Vec<usize> = all_fields
            .iter()
            .enumerate()
            .filter(|(_, fields)| {
                fields.iter().any(|(_, v)| v.to_lowercase().contains(term.as_str()))
            })
            .map(|(i, _)| i)
            .collect();
        // metadata search: indexed keyword query
        let hits = repo.search(None, &Query::any_keyword(term));
        let meta_found: Vec<usize> = hits
            .iter()
            .filter_map(|o| ids.iter().position(|id| id == &o.id))
            .collect();
        let q = retrieval_quality(&meta_found, &relevant);
        meta.0.push(q.precision);
        meta.1.push(q.recall);
        meta.2.push(q.f1);
        // filename search: substring over the filename
        let file_found: Vec<usize> = filenames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.contains(term.as_str()))
            .map(|(i, _)| i)
            .collect();
        let q = retrieval_quality(&file_found, &relevant);
        file.0.push(q.precision);
        file.1.push(q.recall);
        file.2.push(q.f1);
    }
    t.row([
        corpus_name.to_string(),
        "metadata (U-P2P)".to_string(),
        terms.len().to_string(),
        fnum(meta.0.mean()),
        fnum(meta.1.mean()),
        fnum(meta.2.mean()),
    ]);
    t.row([
        corpus_name.to_string(),
        "filename (baseline)".to_string(),
        terms.len().to_string(),
        fnum(file.0.mean()),
        fnum(file.1.mean()),
        fnum(file.2.mean()),
    ]);
}

// ---------------------------------------------------------------------
// E5 — §V: replication vs availability under churn
// ---------------------------------------------------------------------

/// E5: availability of a pattern object under peer churn, as a function
/// of its replication factor — simulated on the flooding substrate vs the
/// analytic `1-(1-a)^r` curve.
pub fn e5_replication(scale: Scale, seed: u64) -> Table {
    let mut t = Table::new(
        "E5 (§V): object availability vs replication under churn (Gnutella substrate)",
        &["availability", "replicas", "trials", "found rate", "analytic", "retrieve ok"],
    );
    let peers = scale.peers(128);
    let trials = scale.queries(200);
    for &availability in &[0.9, 0.7, 0.5] {
        for &replicas in &[1usize, 2, 4, 8] {
            let (mut world, community) =
                pattern_world(ProtocolKind::Gnutella, peers, replicas, seed);
            let mut found = 0usize;
            let mut fetched = 0usize;
            for trial in 0..trials {
                let origin = (trial * 13 + 1) % peers;
                // Common random numbers: the churn snapshot for a trial
                // depends only on (availability, trial), so every replica
                // count faces the identical alive/dead pattern. Together
                // with nested provider placement (see assign_providers)
                // this makes found-rate monotone in `replicas` per trial,
                // not just in expectation.
                let mut rng = rng_for(seed, &format!("e5-{availability}-t{trial}"));
                churn::apply_snapshot(
                    &mut *world.net,
                    availability,
                    &[PeerId(origin as u32)],
                    &mut rng,
                );
                let target = &GOF_PATTERNS[trial % GOF_PATTERNS.len()];
                let first_token = tokenize(target.name).into_iter().next().expect("name token");
                let out = world.search_from(origin, &community, &Query::and([
                    Query::keyword("name", &first_token),
                    Query::eq("category", target.category),
                ]));
                if let Some(hit) = out.hits.first() {
                    found += 1;
                    let hit = hit.clone();
                    let servent = &mut world.servents[origin];
                    if servent.download(&mut *world.net, &mut world.plane, &hit).is_ok() {
                        fetched += 1;
                    }
                }
            }
            churn::revive_all(&mut *world.net);
            t.row([
                fnum(availability),
                replicas.to_string(),
                trials.to_string(),
                fnum(found as f64 / trials as f64),
                fnum(churn::expected_availability(availability, replicas as u32)),
                fnum(fetched as f64 / trials as f64),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------
// E6 — §IV-B / Conclusion: protocol independence
// ---------------------------------------------------------------------

/// E6a: the same servent workload on all three substrates.
pub fn e6_protocols(scale: Scale, seed: u64) -> Table {
    let mut t = Table::new(
        "E6a (§IV-B): one workload, three substrates",
        &["protocol", "peers", "recall", "msgs/query", "mean ms", "p95 ms"],
    );
    let peers = scale.peers(256);
    let n_queries = scale.queries(200);
    for kind in [ProtocolKind::Napster, ProtocolKind::FastTrack, ProtocolKind::Gnutella] {
        let (mut world, community) = pattern_world(kind, peers, 2, seed);
        let zipf = Zipf::new(GOF_PATTERNS.len(), 1.0);
        let mut rng = rng_for(seed, "e6a");
        let mut recall = Series::new();
        let mut msgs = Series::new();
        let mut lat = Series::new();
        for q in 0..n_queries {
            let target = &GOF_PATTERNS[zipf.sample(&mut rng)];
            let origin = (q * 11 + 5) % peers;
            let first_token = tokenize(target.name).into_iter().next().expect("token");
            let out = world.search_from(origin, &community, &Query::and([
                Query::keyword("name", &first_token),
                Query::eq("category", target.category),
            ]));
            recall.push(if out.hits.is_empty() { 0.0 } else { 1.0 });
            msgs.push(out.messages as f64);
            lat.push(out.latency as f64 / 1000.0);
        }
        t.row([
            kind.to_string(),
            peers.to_string(),
            fnum(recall.mean()),
            fnum(msgs.mean()),
            fnum(lat.mean()),
            fnum(lat.percentile(95.0)),
        ]);
    }
    t
}

/// E6b: TTL sweep on the flooding substrate — recall vs message cost
/// (the knee motivates Gnutella's default TTL 7).
pub fn e6_ttl_sweep(scale: Scale, seed: u64) -> Table {
    use up2p_net::{ConstantLatency, FloodingConfig, FloodingNetwork, Topology};
    let mut t = Table::new(
        "E6b: flooding TTL sweep (small-world overlay)",
        &["ttl", "recall", "msgs/query", "mean ms"],
    );
    let peers = scale.peers(256);
    let n_queries = scale.queries(100);
    for ttl in 1..=7u8 {
        let topo = Topology::small_world(peers, 2, 0.2, seed);
        let net = FloodingNetwork::new(
            topo,
            Box::new(ConstantLatency(20_000)),
            FloodingConfig { ttl, dedup: true, ..FloodingConfig::default() },
        );
        let community = pattern_community();
        let mut world = World {
            net: Box::new(net),
            plane: PayloadPlane::new(),
            servents: (0..peers).map(|i| Servent::new(PeerId(i as u32))).collect(),
        };
        world.join_all(&community);
        let mut rng = rng_for(seed, "e6b");
        world.populate_patterns(&community, 2, &mut rng);
        let mut recall = Series::new();
        let mut msgs = Series::new();
        let mut lat = Series::new();
        for q in 0..n_queries {
            let target = &GOF_PATTERNS[q % GOF_PATTERNS.len()];
            let origin = (q * 17 + 3) % peers;
            let first_token = tokenize(target.name).into_iter().next().expect("token");
            let out =
                world.search_from(origin, &community, &Query::keyword("name", &first_token));
            recall.push(if out.hits.is_empty() { 0.0 } else { 1.0 });
            msgs.push(out.messages as f64);
            lat.push(out.latency as f64 / 1000.0);
        }
        t.row([ttl.to_string(), fnum(recall.mean()), fnum(msgs.mean()), fnum(lat.mean())]);
    }
    t
}

/// E6c: duplicate-suppression ablation on a cyclic overlay.
pub fn e6_dedup_ablation(scale: Scale, seed: u64) -> Table {
    use up2p_net::{ConstantLatency, FloodingConfig, FloodingNetwork, Topology};
    let mut t = Table::new(
        "E6c: duplicate suppression ablation (flooding)",
        &["dedup", "ttl", "msgs/query", "recall"],
    );
    let peers = scale.peers(64);
    let n_queries = scale.queries(50);
    for dedup in [true, false] {
        let ttl = 5u8;
        let topo = Topology::small_world(peers, 3, 0.3, seed);
        let net = FloodingNetwork::new(
            topo,
            Box::new(ConstantLatency(20_000)),
            FloodingConfig { ttl, dedup, ..FloodingConfig::default() },
        );
        let community = pattern_community();
        let mut world = World {
            net: Box::new(net),
            plane: PayloadPlane::new(),
            servents: (0..peers).map(|i| Servent::new(PeerId(i as u32))).collect(),
        };
        world.join_all(&community);
        let mut rng = rng_for(seed, "e6c");
        world.populate_patterns(&community, 1, &mut rng);
        let mut msgs = Series::new();
        let mut recall = Series::new();
        for q in 0..n_queries {
            let target = &GOF_PATTERNS[q % GOF_PATTERNS.len()];
            let origin = (q * 17 + 3) % peers;
            let first_token = tokenize(target.name).into_iter().next().expect("token");
            let out =
                world.search_from(origin, &community, &Query::keyword("name", &first_token));
            msgs.push(out.messages as f64);
            recall.push(if out.hits.is_empty() { 0.0 } else { 1.0 });
        }
        t.row([
            dedup.to_string(),
            ttl.to_string(),
            fnum(msgs.mean()),
            fnum(recall.mean()),
        ]);
    }
    t
}

/// E6d: overlay-topology ablation for flooding — ring lattice vs
/// small world vs scale-free (measured Gnutella overlays were
/// heavy-tailed; topology changes the cost/recall point at fixed TTL).
pub fn e6_topologies(scale: Scale, seed: u64) -> Table {
    use up2p_net::{ConstantLatency, FloodingConfig, FloodingNetwork, Topology};
    let mut t = Table::new(
        "E6d: flooding overlay-topology ablation (TTL 5)",
        &["topology", "edges", "recall", "msgs/query", "mean ms"],
    );
    let peers = scale.peers(256);
    let n_queries = scale.queries(100);
    let topologies: Vec<(&str, Topology)> = vec![
        ("ring lattice (k=2)", Topology::ring_lattice(peers, 2)),
        ("small world (k=2, beta=0.2)", Topology::small_world(peers, 2, 0.2, seed)),
        ("scale-free (m=2)", Topology::scale_free(peers, 2, seed)),
    ];
    for (name, topo) in topologies {
        let edges = topo.edge_count();
        let net = FloodingNetwork::new(
            topo,
            Box::new(ConstantLatency(20_000)),
            FloodingConfig { ttl: 5, dedup: true, ..FloodingConfig::default() },
        );
        let community = pattern_community();
        let mut world = World {
            net: Box::new(net),
            plane: PayloadPlane::new(),
            servents: (0..peers).map(|i| Servent::new(PeerId(i as u32))).collect(),
        };
        world.join_all(&community);
        let mut rng = rng_for(seed, "e6d");
        world.populate_patterns(&community, 2, &mut rng);
        let mut recall = Series::new();
        let mut msgs = Series::new();
        let mut lat = Series::new();
        for q in 0..n_queries {
            let target = &GOF_PATTERNS[q % GOF_PATTERNS.len()];
            let origin = (q * 19 + 7) % peers;
            let first_token = tokenize(target.name).into_iter().next().expect("token");
            let out =
                world.search_from(origin, &community, &Query::keyword("name", &first_token));
            recall.push(if out.hits.is_empty() { 0.0 } else { 1.0 });
            msgs.push(out.messages as f64);
            lat.push(out.latency as f64 / 1000.0);
        }
        t.row([
            name.to_string(),
            edges.to_string(),
            fnum(recall.mean()),
            fnum(msgs.mean()),
            fnum(lat.mean()),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// E7 — §V: which attributes to index
// ---------------------------------------------------------------------

/// E7: index-filtering profiles for the design-pattern community — size
/// vs recall, supporting the paper's community-designer-controlled
/// Indexed Attribute filter.
pub fn e7_indexing() -> Table {
    let mut t = Table::new(
        "E7 (§V): indexed-attribute filtering on the GoF corpus",
        &["profile", "fields", "token postings", "approx bytes", "build ms", "recall"],
    );
    let community = pattern_community();
    let all_paths: Vec<String> = up2p_schema::leaf_fields(&community.schema)
        .into_iter()
        .filter(|f| f.base.is_textual() || !f.enumeration.is_empty())
        .map(|f| f.path)
        .collect();
    let profiles: Vec<(&str, Vec<String>)> = vec![
        ("full metadata", all_paths.clone()),
        ("searchable (default)", community.indexed_paths()),
        (
            "name + intent",
            vec!["pattern/name".to_string(), "pattern/intent".to_string()],
        ),
        ("name only (filename-equivalent)", vec!["pattern/name".to_string()]),
    ];

    // ground truth against the full profile
    let terms: Vec<String> = {
        let form = FormModel::derive(&community, FormKind::Create);
        let fields: Vec<Vec<(String, String)>> = GOF_PATTERNS
            .iter()
            .map(|p| {
                let doc = form.fill("pattern", &corpus::pattern_values(p)).expect("valid");
                Repository::extract_fields(&doc, &all_paths)
            })
            .collect();
        query_terms(&fields, 20)
    };
    let mut full_results: Vec<Vec<String>> = Vec::new();

    for (name, paths) in &profiles {
        let started = Instant::now();
        let mut repo = Repository::new();
        let form = FormModel::derive(&community, FormKind::Create);
        for p in &GOF_PATTERNS {
            let doc = form.fill("pattern", &corpus::pattern_values(p)).expect("valid");
            repo.insert_doc(&community.id, doc, paths);
        }
        let build_ms = started.elapsed().as_secs_f64() * 1e3;
        let stats = repo.index_stats();

        let results: Vec<Vec<String>> = terms
            .iter()
            .map(|term| {
                repo.search(None, &Query::any_keyword(term))
                    .iter()
                    .map(|o| o.id.to_string())
                    .collect()
            })
            .collect();
        if full_results.is_empty() {
            full_results = results.clone();
        }
        let mut recall = Series::new();
        for (got, want) in results.iter().zip(&full_results) {
            let q = retrieval_quality(got, want);
            recall.push(q.recall);
        }
        t.row([
            name.to_string(),
            paths.len().to_string(),
            stats.token_postings.to_string(),
            stats.approx_bytes.to_string(),
            fnum(build_ms),
            fnum(recall.mean()),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// E8 — ROADMAP: the metadata index at scale
// ---------------------------------------------------------------------

/// E8: loads a large synthetic corpus into the interned-doc-id metadata
/// index and measures insert throughput (sequential, batch and through
/// the repository), query latency per query class, and targeted-removal
/// cost. Returns the report table; [`e8_index_scale_report`] also yields
/// the JSON metrics written to `BENCH_e8_index_scale.json`.
pub fn e8_index_scale(scale: Scale, seed: u64) -> Table {
    e8_index_scale_report(scale, seed).0
}

/// E8 with the machine-readable metrics alongside the table.
pub fn e8_index_scale_report(scale: Scale, seed: u64) -> (Table, BenchReport) {
    use up2p_store::{MetadataIndex, ResourceId, ValuePattern};
    let n = match scale {
        Scale::Full => 100_000,
        Scale::Smoke => 10_000,
    };
    let reps = scale.queries(100);
    let mut t = Table::new(
        format!("E8 (ROADMAP): metadata index at scale ({n} synthetic tracks)"),
        &["operation", "count", "per-unit us", "throughput /s", "detail"],
    );
    let mut report = BenchReport::new("e8_index_scale");
    report.push("objects", n as f64);

    let fields = corpus::synthetic_track_fields(n, seed);
    let items: Vec<(ResourceId, Vec<(String, String)>)> = fields
        .into_iter()
        .enumerate()
        .map(|(i, f)| (ResourceId::for_bytes(&(i as u64).to_le_bytes()), f))
        .collect();

    // sequential inserts (the servent's publish path); clone outside the
    // timed region so only index work is measured
    let work = items.clone();
    let started = Instant::now();
    let mut ix = MetadataIndex::new();
    for (id, f) in work {
        ix.insert(id, f);
    }
    let secs = started.elapsed().as_secs_f64();
    report.push("insert_per_sec", n as f64 / secs);
    t.row([
        "sequential insert".to_string(),
        n.to_string(),
        fnum(secs * 1e6 / n as f64),
        fnum(n as f64 / secs),
        "one MetadataIndex::insert per object".to_string(),
    ]);

    // batch insert (bulk load with deferred posting-list merging); the
    // sequential index is dropped first so both loads face the same heap
    drop(ix);
    let work = items.clone();
    let started = Instant::now();
    let mut ix = MetadataIndex::new();
    ix.insert_batch(work);
    let secs = started.elapsed().as_secs_f64();
    report.push("batch_insert_per_sec", n as f64 / secs);
    t.row([
        "batch insert".to_string(),
        n.to_string(),
        fnum(secs * 1e6 / n as f64),
        fnum(n as f64 / secs),
        "MetadataIndex::insert_batch".to_string(),
    ]);

    // repository batch load over real XML documents (smaller slice:
    // parse + content addressing dominate above the index)
    let docs_n = (n / 20).max(100);
    let xml_docs: Vec<String> = items
        .iter()
        .take(docs_n)
        .map(|(_, f)| {
            let cell = |leaf: &str| {
                f.iter().find(|(p, _)| p.ends_with(leaf)).map(|(_, v)| v.as_str()).unwrap_or("")
            };
            format!(
                "<track><title>{}</title><artist>{}</artist><genre>{}</genre><year>{}</year></track>",
                cell("title"),
                cell("artist"),
                cell("genre"),
                cell("year")
            )
        })
        .collect();
    let paths: Vec<String> = ["track/title", "track/artist", "track/genre", "track/year"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let parsed: Vec<up2p_xml::Document> =
        xml_docs.iter().map(|x| up2p_xml::Document::parse(x).expect("synthetic XML")).collect();
    let started = Instant::now();
    let mut repo = Repository::new();
    let repo_ids = repo.insert_batch("tracks", parsed, &paths);
    let secs = started.elapsed().as_secs_f64();
    assert_eq!(repo.len(), repo_ids.iter().collect::<std::collections::BTreeSet<_>>().len());
    report.push("repo_batch_docs_per_sec", docs_n as f64 / secs);
    t.row([
        "repository batch insert".to_string(),
        docs_n.to_string(),
        fnum(secs * 1e6 / docs_n as f64),
        fnum(docs_n as f64 / secs),
        "Repository::insert_batch (XML + hash + index)".to_string(),
    ]);

    // query latency per class, over the populated index
    let genres = corpus::TRACK_GENRES;
    let classes: Vec<(&str, Vec<Query>)> = vec![
        (
            "exact",
            (0..reps).map(|i| Query::eq("track/genre", genres[i % genres.len()])).collect(),
        ),
        (
            "keyword",
            (0..reps).map(|i| Query::keyword("title", &format!("word{:04}", i % 200))).collect(),
        ),
        (
            "wildcard",
            (0..reps)
                .map(|i| Query::Match {
                    field: "track/artist".to_string(),
                    pattern: ValuePattern::from_wildcard(&format!("artist{:02}*", i % 100)),
                })
                .collect(),
        ),
        (
            "boolean",
            (0..reps)
                .map(|i| {
                    Query::and([
                        Query::eq("track/genre", genres[i % genres.len()]),
                        Query::keyword("title", &format!("word{:04}", i % 200)),
                    ])
                })
                .collect(),
        ),
    ];
    let mut query_secs = 0.0;
    let mut query_ops = 0usize;
    for (class, queries) in &classes {
        let started = Instant::now();
        let mut hits = 0usize;
        for q in queries {
            hits += ix.execute(q).len();
        }
        let secs = started.elapsed().as_secs_f64();
        query_secs += secs;
        query_ops += queries.len();
        let us = secs * 1e6 / queries.len() as f64;
        report.push(&format!("{class}_query_us"), us);
        t.row([
            format!("{class} query"),
            queries.len().to_string(),
            fnum(us),
            fnum(1e6 / us.max(1e-9)),
            format!("{} hits total", hits),
        ]);
    }

    // the headline scale metric: inserts + queries per wall-clock second
    // (sequential-insert time + all query time over one workload)
    let insert_secs = n as f64 / report.get("insert_per_sec").expect("recorded above");
    let combined = (n + query_ops) as f64 / (insert_secs + query_secs);
    report.push("insert_plus_query_per_sec", combined);
    t.row([
        "insert+query combined".to_string(),
        (n + query_ops).to_string(),
        String::new(),
        fnum(combined),
        "sequential insert + all query classes".to_string(),
    ]);

    // targeted removal: cost proportional to the object's own postings
    let removals = n / 10;
    let started = Instant::now();
    for (id, _) in items.iter().take(removals) {
        ix.remove(id);
    }
    let us = started.elapsed().as_secs_f64() * 1e6 / removals as f64;
    report.push("remove_us_per_object", us);
    t.row([
        "targeted remove".to_string(),
        removals.to_string(),
        fnum(us),
        fnum(1e6 / us.max(1e-9)),
        "replays the removed object's own postings".to_string(),
    ]);

    let stats = ix.stats();
    report.push("token_postings", stats.token_postings as f64);
    report.push("approx_bytes", stats.approx_bytes as f64);
    t.row([
        "index size".to_string(),
        stats.objects.to_string(),
        String::new(),
        String::new(),
        format!("{} token postings, {} bytes interned", stats.token_postings, stats.approx_bytes),
    ]);
    (t, report)
}

// ---------------------------------------------------------------------
// E9 — ROADMAP: indexed query evaluation at every network node
// ---------------------------------------------------------------------

/// The Zipf-skewed E9 query mix over the synthetic track corpus: half
/// keyword lookups, a quarter exact genre matches, and the rest boolean
/// and wildcard queries — the shape of a large community's search box.
fn e9_query_mix(n_queries: usize, seed: u64) -> Vec<Query> {
    use up2p_store::ValuePattern;
    let mut rng = rng_for(seed, "e9-queries");
    let vocab = Zipf::new(5000, 1.05);
    let genres = corpus::TRACK_GENRES;
    (0..n_queries)
        .map(|i| {
            let word = format!("word{:04}", vocab.sample(&mut rng));
            match i % 20 {
                0..=9 => Query::keyword("title", &word),
                10..=14 => Query::eq("track/genre", genres[rng.gen_range(0..genres.len())]),
                15..=17 => Query::and([
                    Query::eq("track/genre", genres[rng.gen_range(0..genres.len())]),
                    Query::keyword("title", &word),
                ]),
                _ => Query::Match {
                    field: "track/artist".to_string(),
                    pattern: ValuePattern::from_wildcard(&format!(
                        "artist{:02}*",
                        rng.gen_range(0..100)
                    )),
                },
            }
        })
        .collect()
}

/// E9: the indexed data plane at network scale. Loads a large synthetic
/// corpus into one [`up2p_net::IndexNode`] (the structure every
/// record-holding node now uses), measures indexed evaluation against
/// the pre-refactor linear `matches_fields` scan on the identical
/// workload, then drives the same records and query mix end-to-end
/// through all three substrates.
pub fn e9_search_scale(scale: Scale, seed: u64) -> Table {
    e9_search_scale_report(scale, seed).0
}

/// E9 with the machine-readable metrics alongside the table (written to
/// `BENCH_e9_search_scale.json` by `run_experiments`).
pub fn e9_search_scale_report(scale: Scale, seed: u64) -> (Table, BenchReport) {
    use up2p_net::{build_network, IndexNode, PeerId, ResourceRecord};
    let (peers, n, n_queries) = match scale {
        Scale::Full => (2_000, 100_000, 2_000),
        Scale::Smoke => (256, 10_000, 400),
    };
    // the linear baseline re-matches every record per query; cap its
    // sample so the baseline measurement stays tractable and report both
    // sides as per-query rates over the same mix
    let lin_queries = n_queries.min(match scale {
        Scale::Full => 200,
        Scale::Smoke => 50,
    });
    let net_queries = scale.queries(200);

    let mut t = Table::new(
        format!(
            "E9 (ROADMAP): indexed query evaluation at every node \
             ({n} records, {peers} peers)"
        ),
        &["operation", "count", "per-unit us", "throughput /s", "detail"],
    );
    let mut report = BenchReport::new("e9_search_scale");
    report.push("objects", n as f64);
    report.push("peers", peers as f64);
    report.push("queries", n_queries as f64);

    // one shared-metadata record set; every publish below is an Arc bump
    let records: Vec<(ResourceRecord, PeerId)> = corpus::synthetic_track_fields(n, seed)
        .into_iter()
        .enumerate()
        .map(|(i, fields)| {
            (
                ResourceRecord::new(format!("track{i:06}"), "tracks", fields),
                PeerId((i % peers) as u32),
            )
        })
        .collect();
    let queries = e9_query_mix(n_queries, seed);
    // seeded liveness pattern: ~10% of providers offline, filtered from
    // the candidate set on both the indexed and the linear side
    let alive: Vec<bool> = {
        let mut rng = rng_for(seed, "e9-liveness");
        (0..peers).map(|_| rng.gen::<f64>() < 0.9).collect()
    };

    // -- per-node evaluation: indexed ---------------------------------
    let started = Instant::now();
    let mut node = IndexNode::new();
    for (record, provider) in &records {
        node.insert(*provider, record);
    }
    let secs = started.elapsed().as_secs_f64();
    report.push("publish_per_sec", n as f64 / secs);
    t.row([
        "publish into IndexNode".to_string(),
        n.to_string(),
        fnum(secs * 1e6 / n as f64),
        fnum(n as f64 / secs),
        "shared-metadata upload (Arc bump + postings)".to_string(),
    ]);

    let started = Instant::now();
    let mut indexed_hits = 0usize;
    for q in &queries {
        node.search(
            "tracks",
            q,
            |p| alive[p.index() % peers],
            |_, _, _| indexed_hits += 1,
        );
    }
    let indexed_secs = started.elapsed().as_secs_f64();
    let indexed_per_sec = n_queries as f64 / indexed_secs;
    report.push("indexed_eval_per_sec", indexed_per_sec);
    t.row([
        "indexed evaluation".to_string(),
        n_queries.to_string(),
        fnum(indexed_secs * 1e6 / n_queries as f64),
        fnum(indexed_per_sec),
        format!("IndexNode posting-list lookups, {indexed_hits} hits"),
    ]);

    // -- per-node evaluation: pre-refactor linear baseline ------------
    let started = Instant::now();
    let mut linear_hits = 0usize;
    for q in queries.iter().take(lin_queries) {
        for (record, provider) in &records {
            if record.community == "tracks"
                && q.matches_fields(&record.fields)
                && alive[provider.index() % peers]
            {
                linear_hits += 1;
            }
        }
    }
    let linear_secs = started.elapsed().as_secs_f64();
    let linear_per_sec = lin_queries as f64 / linear_secs;
    report.push("linear_eval_per_sec", linear_per_sec);
    t.row([
        "linear baseline".to_string(),
        lin_queries.to_string(),
        fnum(linear_secs * 1e6 / lin_queries as f64),
        fnum(linear_per_sec),
        format!("matches_fields scan over all records, {linear_hits} hits"),
    ]);

    let speedup = indexed_per_sec / linear_per_sec;
    report.push("indexed_speedup", speedup);
    t.row([
        "indexed vs linear".to_string(),
        String::new(),
        String::new(),
        String::new(),
        format!("{:.1}x more searches/sec at one node", speedup),
    ]);

    // -- end-to-end through all three substrates ----------------------
    for kind in [ProtocolKind::Napster, ProtocolKind::FastTrack, ProtocolKind::Gnutella] {
        let mut net = build_network(kind, peers, seed);
        for (record, provider) in &records {
            net.publish(*provider, record.clone());
        }
        net.reset_stats();
        let started = Instant::now();
        let mut with_hits = 0usize;
        let mut msgs = Series::new();
        for (i, q) in queries.iter().take(net_queries).enumerate() {
            let origin = PeerId(((i * 11 + 5) % peers) as u32);
            let out = net.search(origin, "tracks", q);
            if !out.hits.is_empty() {
                with_hits += 1;
            }
            msgs.push(out.messages as f64);
        }
        let secs = started.elapsed().as_secs_f64();
        let key = kind.schema_value().to_lowercase();
        report.push(&format!("{key}_searches_per_sec"), net_queries as f64 / secs);
        report.push(&format!("{key}_msgs_per_query"), msgs.mean());
        report.push(
            &format!("{key}_success_rate"),
            with_hits as f64 / net_queries as f64,
        );
        t.row([
            format!("{kind} end-to-end"),
            net_queries.to_string(),
            fnum(secs * 1e6 / net_queries as f64),
            fnum(net_queries as f64 / secs),
            format!("{:.1} msgs/query, {with_hits}/{net_queries} with hits", msgs.mean()),
        ]);
    }

    // -- multi-core serving plane: sharded index, 1→N worker grid -----
    // The corpus is spread over many communities so the sharded node has
    // independent read-mostly shards to serve from; the same query mix
    // is then answered through `serve_batch` at increasing pool widths.
    // Scaling is bounded by the machine: `hardware_threads` records how
    // many cores this JSON was generated with, so a flat curve on a
    // 1-core container is the honest expected result there.
    {
        use up2p_net::{serve_batch, ShardedIndexNode};
        let hardware = std::thread::available_parallelism().map_or(1, |p| p.get());
        report.push("hardware_threads", hardware as f64);
        const GRID_COMMUNITIES: usize = 16;
        let community_of = |i: usize| format!("tracks{:02}", i % GRID_COMMUNITIES);
        let started = Instant::now();
        let sharded = ShardedIndexNode::new();
        for (i, (record, provider)) in records.iter().enumerate() {
            let rec = ResourceRecord {
                key: record.key.clone(),
                community: community_of(i),
                fields: record.fields.clone(),
            };
            sharded.insert(*provider, &rec);
        }
        let secs = started.elapsed().as_secs_f64();
        report.push("sharded_publish_per_sec", n as f64 / secs);
        t.row([
            "publish into ShardedIndexNode".to_string(),
            n.to_string(),
            fnum(secs * 1e6 / n as f64),
            fnum(n as f64 / secs),
            format!("{GRID_COMMUNITIES} community shards, single writer"),
        ]);

        let grid: Vec<(String, Query)> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| (community_of(i), q.clone()))
            .collect();
        let mut base_per_sec = f64::NAN;
        for workers in [1usize, 2, 4, 8] {
            let started = Instant::now();
            let hits = serve_batch(workers, grid.len(), |i| {
                let (community, q) = &grid[i];
                let mut hits = 0u64;
                sharded.search(community, q, |p| alive[p.index() % peers], |_, _, _| {
                    hits += 1;
                });
                hits
            });
            let secs = started.elapsed().as_secs_f64();
            let per_sec = grid.len() as f64 / secs;
            if workers == 1 {
                base_per_sec = per_sec;
            }
            report.push(&format!("scale_w{workers}_searches_per_sec"), per_sec);
            t.row([
                format!("sharded read-heavy, {workers} workers"),
                grid.len().to_string(),
                fnum(secs * 1e6 / grid.len() as f64),
                fnum(per_sec),
                format!(
                    "read guards only, {} hits, {hardware} hw threads",
                    hits.iter().sum::<u64>()
                ),
            ]);
        }
        let speedup =
            report.get("scale_w8_searches_per_sec").unwrap_or(0.0) / base_per_sec.max(1e-9);
        report.push("read_speedup_8w", speedup);
        t.row([
            "8-worker speedup".to_string(),
            String::new(),
            String::new(),
            String::new(),
            format!("{speedup:.2}x aggregate searches/sec vs 1 worker ({hardware} hw threads)"),
        ]);

        // mixed plane: publishes land in single shards while searches of
        // the other communities keep streaming through read guards
        const WRITE_RATIO: usize = 10; // one publish per 10 operations
        report.push("mixed_write_ratio", 1.0 / WRITE_RATIO as f64);
        for workers in [1usize, 8] {
            let started = Instant::now();
            serve_batch(workers, grid.len(), |i| {
                if i % WRITE_RATIO == 0 {
                    let (source, provider) = &records[i % records.len()];
                    let rec = ResourceRecord {
                        key: format!("mixed-{workers}-{i}"),
                        community: community_of(i),
                        fields: source.fields.clone(),
                    };
                    sharded.insert(*provider, &rec);
                    0u64
                } else {
                    let (community, q) = &grid[i];
                    let mut hits = 0u64;
                    sharded.search(community, q, |p| alive[p.index() % peers], |_, _, _| {
                        hits += 1;
                    });
                    hits
                }
            });
            let secs = started.elapsed().as_secs_f64();
            let per_sec = grid.len() as f64 / secs;
            report.push(&format!("mixed_w{workers}_ops_per_sec"), per_sec);
            t.row([
                format!("mixed 10% publish, {workers} workers"),
                grid.len().to_string(),
                fnum(secs * 1e6 / grid.len() as f64),
                fnum(per_sec),
                "writers take one shard; readers stay wait-free elsewhere".to_string(),
            ]);
        }
    }

    // -- pooled batch serving end-to-end (Napster server) -------------
    {
        use up2p_net::SearchRequest;
        let mut net = build_network(ProtocolKind::Napster, peers, seed);
        for (record, provider) in &records {
            net.publish(*provider, record.clone());
        }
        net.reset_stats();
        let requests: Vec<SearchRequest> = queries
            .iter()
            .take(net_queries)
            .enumerate()
            .map(|(i, q)| {
                SearchRequest::new(PeerId(((i * 11 + 5) % peers) as u32), "tracks", q.clone())
            })
            .collect();
        let batch_workers = 4usize;
        let started = Instant::now();
        let outcomes = net.search_batch(&requests, batch_workers);
        let secs = started.elapsed().as_secs_f64();
        let with_hits = outcomes.iter().filter(|o| !o.hits.is_empty()).count();
        report.push("napster_batch_workers", batch_workers as f64);
        report.push("napster_batch_searches_per_sec", requests.len() as f64 / secs);
        t.row([
            "Napster search_batch".to_string(),
            requests.len().to_string(),
            fnum(secs * 1e6 / requests.len() as f64),
            fnum(requests.len() as f64 / secs),
            format!(
                "{batch_workers} pool workers, {with_hits}/{} with hits",
                requests.len()
            ),
        ]);
    }
    (t, report)
}

// ---------------------------------------------------------------------
// E10 — guided search: routing digests vs blind flooding
// ---------------------------------------------------------------------

/// E10: the routing-digest layer (DESIGN.md §3c). Same corpus and query
/// mix as E9, but the decentralized substrates run twice — once flooding
/// blindly, once guided by per-neighbor routing digests — and the
/// message bill per query is compared directly. Digest maintenance
/// traffic (pushes + requests) is reported separately so the cost of
/// guided routing stays visible.
pub fn e10_guided_search(scale: Scale, seed: u64) -> Table {
    e10_guided_search_report(scale, seed).0
}

/// E10 with the machine-readable metrics alongside the table (written to
/// `BENCH_e10_guided_search.json` by `run_experiments`).
pub fn e10_guided_search_report(scale: Scale, seed: u64) -> (Table, BenchReport) {
    use up2p_net::{build_network_with, DigestConfig, NetConfig, PeerId, ResourceRecord};
    let (peers, n, n_queries) = match scale {
        Scale::Full => (2_000, 100_000, 2_000),
        Scale::Smoke => (256, 10_000, 400),
    };
    let net_queries = scale.queries(200);

    let mut t = Table::new(
        format!("E10: guided search via routing digests ({n} records, {peers} peers)"),
        &["substrate", "msgs/query", "success", "digest msgs", "detail"],
    );
    let mut report = BenchReport::new("e10_guided_search");
    report.push("objects", n as f64);
    report.push("peers", peers as f64);
    report.push("queries", net_queries as f64);

    // the E9 corpus, placement and query mix, so msgs/query lines up
    // with the E9 end-to-end rows
    let records: Vec<(ResourceRecord, PeerId)> = corpus::synthetic_track_fields(n, seed)
        .into_iter()
        .enumerate()
        .map(|(i, fields)| {
            (
                ResourceRecord::new(format!("track{i:06}"), "tracks", fields),
                PeerId((i % peers) as u32),
            )
        })
        .collect();
    let queries = e9_query_mix(n_queries, seed);

    let cases = [
        ("gnutella_flood", ProtocolKind::Gnutella, false),
        ("gnutella_guided", ProtocolKind::Gnutella, true),
        ("fasttrack_flood", ProtocolKind::FastTrack, false),
        ("fasttrack_guided", ProtocolKind::FastTrack, true),
    ];
    // each flood row precedes its guided twin; remember the baseline
    let mut baseline_msgs = 0.0;
    for (key, kind, guided) in cases {
        let config = if guided {
            NetConfig::new().digests(DigestConfig::guided())
        } else {
            NetConfig::new()
        };
        let mut net = build_network_with(kind, peers, seed, &config);
        for (record, provider) in &records {
            net.publish(*provider, record.clone());
        }
        net.reset_stats();
        let started = Instant::now();
        let mut with_hits = 0usize;
        let mut msgs = Series::new();
        for (i, q) in queries.iter().take(net_queries).enumerate() {
            let origin = PeerId(((i * 11 + 5) % peers) as u32);
            let out = net.search(origin, "tracks", q);
            if !out.hits.is_empty() {
                with_hits += 1;
            }
            msgs.push(out.messages as f64);
        }
        let secs = started.elapsed().as_secs_f64();
        let digest_msgs = net.digest_messages();
        let success = with_hits as f64 / net_queries as f64;
        report.push(&format!("{key}_msgs_per_query"), msgs.mean());
        report.push(&format!("{key}_success_rate"), success);
        report.push(&format!("{key}_searches_per_sec"), net_queries as f64 / secs);
        report.push(&format!("{key}_digest_msgs"), digest_msgs as f64);
        let detail = if guided {
            let reduction = baseline_msgs / msgs.mean().max(f64::MIN_POSITIVE);
            report.push(&format!("{key}_reduction"), reduction);
            format!("{reduction:.1}x fewer msgs/query than blind flooding")
        } else {
            baseline_msgs = msgs.mean();
            "blind flooding baseline".to_string()
        };
        t.row([
            key.replace('_', " "),
            fnum(msgs.mean()),
            format!("{with_hits}/{net_queries}"),
            digest_msgs.to_string(),
            detail,
        ]);
    }
    (t, report)
}

// ---------------------------------------------------------------------
// E11 — discrete-event engine at 10k/100k peers
// ---------------------------------------------------------------------

/// One E11 case: build a [`up2p_net::DesNetwork`], publish the
/// catalogue, schedule the query timeline (plus an optional churn
/// storm), drain the queue, and record throughput/cost/footprint.
#[allow(clippy::too_many_arguments)]
fn e11_case(
    key: &str,
    kind: ProtocolKind,
    peers: usize,
    seed: u64,
    config: &up2p_net::NetConfig,
    churn_storm: bool,
    t: &mut Table,
    report: &mut BenchReport,
) {
    use up2p_net::{DesNetwork, PeerNetwork, ResourceRecord};
    let n_records = (peers / 10).max(50);
    let n_queries = if peers >= 50_000 { 200 } else { 100 };

    let mut net = DesNetwork::build(kind, peers, seed, config);
    for (i, fields) in corpus::synthetic_track_fields(n_records, seed).into_iter().enumerate() {
        net.publish(
            PeerId((i % peers) as u32),
            ResourceRecord::new(format!("track{i:06}"), "tracks", fields),
        );
    }
    if churn_storm {
        let horizon = n_queries as u64 * 10_000;
        net.schedule_churn(&churn::exponential_schedule(peers, horizon, 400_000, 200_000, seed));
    }
    for (i, q) in e9_query_mix(n_queries, seed).into_iter().enumerate() {
        let origin = PeerId(((i * 11 + 5) % peers) as u32);
        net.schedule_query(i as u64 * 10_000, origin, "tracks", q);
    }
    let started = Instant::now();
    let outcomes = net.run();
    let secs = started.elapsed().as_secs_f64().max(1e-9);

    let with_hits = outcomes.iter().filter(|o| !o.hits.is_empty()).count();
    let mut msgs = Series::new();
    for o in &outcomes {
        msgs.push(o.messages as f64);
    }
    let events_per_sec = net.events_processed() as f64 / secs;
    let success = with_hits as f64 / outcomes.len().max(1) as f64;
    let bytes_per_peer = net.approx_bytes() as f64 / peers as f64;
    report.push(&format!("{key}_events_per_sec"), events_per_sec);
    report.push(&format!("{key}_msgs_per_query"), msgs.mean());
    report.push(&format!("{key}_success_rate"), success);
    report.push(&format!("{key}_bytes_per_peer"), bytes_per_peer);
    t.row([
        key.replace('_', " "),
        peers.to_string(),
        fnum(events_per_sec),
        fnum(msgs.mean()),
        format!("{with_hits}/{}", outcomes.len()),
        fnum(bytes_per_peer),
        fnum(secs * 1e3),
    ]);
}

/// E11: the discrete-event engine at 10k/100k peers (table only).
pub fn e11_des_scale(scale: Scale, seed: u64) -> Table {
    e11_des_scale_report(scale, seed).0
}

/// E11 with the machine-readable metrics alongside the table (written
/// to `BENCH_e11_des_scale.json` by `run_experiments`). All three
/// protocols run the full peer grid on the virtual-time engine; the
/// smaller grid size additionally gets a guided-search row (compact
/// digests — full-size digests at 10k+ peers would dwarf the record
/// state) and a FastTrack churn-storm row where liveness flaps land
/// between message deliveries.
pub fn e11_des_scale_report(scale: Scale, seed: u64) -> (Table, BenchReport) {
    use up2p_net::{DigestConfig, NetConfig};
    let grid: [usize; 2] = match scale {
        Scale::Full => [10_000, 100_000],
        Scale::Smoke => [500, 2_000],
    };
    let mut t = Table::new(
        format!("E11: discrete-event engine at scale ({} / {} peers)", grid[0], grid[1]),
        &["substrate", "peers", "events/sec", "msgs/query", "success", "bytes/peer", "wall ms"],
    );
    let mut report = BenchReport::new("e11_des_scale");
    report.push("peers_small", grid[0] as f64);
    report.push("peers_large", grid[1] as f64);
    for peers in grid {
        for (name, kind) in [
            ("napster", ProtocolKind::Napster),
            ("gnutella", ProtocolKind::Gnutella),
            ("fasttrack", ProtocolKind::FastTrack),
        ] {
            e11_case(
                &format!("{name}_{peers}"),
                kind,
                peers,
                seed,
                &NetConfig::new(),
                false,
                &mut t,
                &mut report,
            );
        }
    }
    let small = grid[0];
    e11_case(
        &format!("gnutella_guided_{small}"),
        ProtocolKind::Gnutella,
        small,
        seed,
        &NetConfig::new().digests(DigestConfig { log2_bits: 10, ..DigestConfig::guided() }),
        false,
        &mut t,
        &mut report,
    );
    e11_case(
        &format!("fasttrack_churn_{small}"),
        ProtocolKind::FastTrack,
        small,
        seed,
        &NetConfig::new(),
        true,
        &mut t,
        &mut report,
    );
    (t, report)
}

// ---------------------------------------------------------------------
// E12 — durability: WAL + segment recovery vs the XML rebuild baseline
// ---------------------------------------------------------------------

/// Unique scratch directory for an E12 sub-measurement. Scenario tests
/// run concurrently inside one process, so a counter joins the pid.
fn e12_tmp(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("up2p-e12-{tag}-{}-{case}", std::process::id()))
}

/// Total size of the (flat) files directly under `dir`.
fn dir_bytes(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|rd| rd.flatten().filter_map(|e| e.metadata().ok()).map(|m| m.len()).sum())
        .unwrap_or(0)
}

/// E12: the append-only durability layer — write-ahead-logged publishes,
/// compaction into a pre-tokenized segment, and manifest recovery — vs
/// the legacy re-tokenizing XML directory rebuild (table only).
pub fn e12_durability(scale: Scale, seed: u64) -> Table {
    e12_durability_report(scale, seed).0
}

/// E12 with the machine-readable metrics alongside the table (written
/// to `BENCH_e12_durability.json` by `run_experiments`). One corpus of
/// synthetic tracks is published through the durable store (batched
/// fsync for the bulk, a per-record-fsync slice for the worst case),
/// compacted, and recovered through the manifest fast path; the same
/// state saved as a legacy XML directory is then reloaded through the
/// parse-and-re-tokenize fallback so the two recovery paths face
/// identical contents.
pub fn e12_durability_report(scale: Scale, seed: u64) -> (Table, BenchReport) {
    use up2p_store::{DurableOptions, DurableRepository, SyncPolicy};
    let n = match scale {
        Scale::Full => 100_000,
        Scale::Smoke => 2_000,
    };
    let mut t = Table::new(
        format!("E12: durable store vs XML rebuild ({n} synthetic tracks)"),
        &["operation", "objects", "wall ms", "throughput /s", "detail"],
    );
    let mut report = BenchReport::new("e12_durability");
    report.push("objects", n as f64);

    let fields = corpus::synthetic_track_fields(n, seed);
    let paths: Vec<String> = ["track/title", "track/artist", "track/genre", "track/year"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    // a serial element keeps every document content-distinct (the store
    // is content-addressed; Zipf-sampled fields alone can collide)
    let xml_docs: Vec<String> = fields
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let cell = |leaf: &str| {
                f.iter().find(|(p, _)| p.ends_with(leaf)).map(|(_, v)| v.as_str()).unwrap_or("")
            };
            format!(
                "<track><serial>{i}</serial><title>{}</title><artist>{}</artist>\
                 <genre>{}</genre><year>{}</year></track>",
                cell("title"),
                cell("artist"),
                cell("genre"),
                cell("year")
            )
        })
        .collect();

    // durable publish, fsync batched: the steady-state ingest path
    let durable_dir = e12_tmp("durable");
    let _ = std::fs::remove_dir_all(&durable_dir);
    let opts = DurableOptions { sync: SyncPolicy::EveryN(1024), compact_every: None };
    let mut store = DurableRepository::open(&durable_dir, opts).expect("open durable dir");
    let started = Instant::now();
    for xml in &xml_docs {
        store.publish_xml("tracks", xml, &paths).expect("durable publish");
    }
    store.sync().expect("final fsync");
    let publish_secs = started.elapsed().as_secs_f64();
    assert_eq!(store.repository().len(), n, "serials keep all documents distinct");
    report.push("publish_durable_per_sec", n as f64 / publish_secs);
    t.row([
        "durable publish (batched fsync)".to_string(),
        n.to_string(),
        fnum(publish_secs * 1e3),
        fnum(n as f64 / publish_secs),
        "WAL append before index, fsync per 1024".to_string(),
    ]);

    // per-record fsync on a smaller slice: every Ok is crash-durable
    let fsync_n = (n / 20).max(100);
    let fsync_dir = e12_tmp("fsync");
    let _ = std::fs::remove_dir_all(&fsync_dir);
    let mut strict =
        DurableRepository::open(&fsync_dir, DurableOptions::default()).expect("open fsync dir");
    let started = Instant::now();
    for xml in xml_docs.iter().take(fsync_n) {
        strict.publish_xml("tracks", xml, &paths).expect("strict publish");
    }
    let fsync_secs = started.elapsed().as_secs_f64();
    drop(strict);
    let _ = std::fs::remove_dir_all(&fsync_dir);
    report.push("publish_fsync_each_per_sec", fsync_n as f64 / fsync_secs);
    t.row([
        "durable publish (fsync each)".to_string(),
        fsync_n.to_string(),
        fnum(fsync_secs * 1e3),
        fnum(fsync_n as f64 / fsync_secs),
        "SyncPolicy::EveryRecord".to_string(),
    ]);

    // compaction: WAL → sorted immutable segment + fresh manifest
    let started = Instant::now();
    store.compact().expect("compact");
    let compact_secs = started.elapsed().as_secs_f64();
    let durable_bytes = dir_bytes(&durable_dir);
    report.push("compact_ms", compact_secs * 1e3);
    report.push("durable_bytes", durable_bytes as f64);
    t.row([
        "compaction".to_string(),
        n.to_string(),
        fnum(compact_secs * 1e3),
        fnum(n as f64 / compact_secs),
        format!("segment + manifest, {durable_bytes} bytes on disk"),
    ]);

    // recovery through the manifest fast path: pre-tokenized segment
    // frames replay straight into the index, no tokenizer run
    drop(store);
    let started = Instant::now();
    let (recovered, rec) = DurableRepository::recover(&durable_dir).expect("recover");
    let recovery_secs = started.elapsed().as_secs_f64();
    assert_eq!(recovered.len(), n);
    assert_eq!(rec.segment_objects, n);
    report.push("recovery_ms", recovery_secs * 1e3);
    t.row([
        "recovery (segment + WAL tail)".to_string(),
        n.to_string(),
        fnum(recovery_secs * 1e3),
        fnum(n as f64 / recovery_secs),
        format!("generation {}, zero re-tokenization", rec.generation),
    ]);

    // the baseline: the same state as a legacy XML directory, reloaded
    // through the parse-every-wrapper, re-tokenize-everything fallback
    let xml_dir = e12_tmp("xml");
    let _ = std::fs::remove_dir_all(&xml_dir);
    recovered.save_dir(&xml_dir).expect("save XML baseline");
    let xml_bytes = dir_bytes(&xml_dir);
    let started = Instant::now();
    let (rebuilt, load) = Repository::load_dir_report(&xml_dir).expect("XML rebuild");
    let xml_secs = started.elapsed().as_secs_f64();
    assert!(!load.from_manifest, "baseline must exercise the legacy scan");
    assert_eq!(rebuilt.len(), n);
    report.push("xml_rebuild_ms", xml_secs * 1e3);
    report.push("xml_bytes", xml_bytes as f64);
    t.row([
        "XML rebuild (baseline)".to_string(),
        n.to_string(),
        fnum(xml_secs * 1e3),
        fnum(n as f64 / xml_secs),
        "legacy load_dir: parse wrappers + re-tokenize".to_string(),
    ]);

    // both paths must serve identical query results
    for genre in corpus::TRACK_GENRES {
        let q = Query::eq("track/genre", genre);
        assert_eq!(
            recovered.search(Some("tracks"), &q).len(),
            rebuilt.search(Some("tracks"), &q).len(),
            "recovered and rebuilt stores disagree on genre {genre}"
        );
    }

    let speedup = xml_secs / recovery_secs;
    report.push("recovery_speedup", speedup);
    t.row([
        "recovery speedup".to_string(),
        n.to_string(),
        "-".to_string(),
        format!("{}x", fnum(speedup)),
        "manifest fast path vs XML rebuild".to_string(),
    ]);
    t.row([
        "on-disk footprint".to_string(),
        n.to_string(),
        "-".to_string(),
        "-".to_string(),
        format!("durable {durable_bytes} bytes vs XML {xml_bytes} bytes"),
    ]);

    let _ = std::fs::remove_dir_all(&durable_dir);
    let _ = std::fs::remove_dir_all(&xml_dir);
    (t, report)
}

/// Runs every scenario at the given scale, returning all tables in
/// EXPERIMENTS.md order.
pub fn run_all(scale: Scale, seed: u64) -> Vec<Table> {
    vec![
        e1_pipeline(),
        e2_generation(&[4, 8, 16, 32, 64]),
        e3_discovery(scale, seed),
        e4_metadata(),
        e5_replication(scale, seed),
        e6_protocols(scale, seed),
        e6_ttl_sweep(scale, seed),
        e6_dedup_ablation(scale, seed),
        e6_topologies(scale, seed),
        e7_indexing(),
        e8_index_scale(scale, seed),
        e9_search_scale(scale, seed),
        e10_guided_search(scale, seed),
        e11_des_scale(scale, seed),
        e12_durability(scale, seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_has_all_stages() {
        let t = e1_pipeline();
        assert_eq!(t.rows.len(), 6);
    }

    #[test]
    fn e2_succeeds_for_all_sizes() {
        let t = e2_generation(&[2, 8, 24]);
        assert_eq!(t.rows.len(), 3);
        // HTML grows with field count
        let b0: usize = t.rows[0][4].parse().unwrap();
        let b2: usize = t.rows[2][4].parse().unwrap();
        assert!(b2 > b0);
    }

    #[test]
    fn e3_centralized_always_succeeds() {
        let t = e3_discovery(Scale::Smoke, 7);
        // Napster rows come first; success column is index 4
        for row in t.rows.iter().filter(|r| r[0] == "Napster") {
            assert_eq!(row[4], "1.00", "centralized discovery is exact: {row:?}");
        }
    }

    #[test]
    fn e4_metadata_beats_filenames_on_patterns() {
        let t = e4_metadata();
        let f1 = |corpus: &str, method_prefix: &str| -> f64 {
            t.rows
                .iter()
                .find(|r| r[0] == corpus && r[1].starts_with(method_prefix))
                .map(|r| r[5].parse().unwrap())
                .unwrap()
        };
        let meta_patterns = f1("patterns", "metadata");
        let file_patterns = f1("patterns", "filename");
        assert!(
            meta_patterns > file_patterns + 0.2,
            "metadata {meta_patterns} vs filename {file_patterns}"
        );
        // the gap shrinks for MP3s (descriptive filenames)
        let meta_mp3 = f1("mp3", "metadata");
        let file_mp3 = f1("mp3", "filename");
        assert!(
            (meta_patterns - file_patterns) > (meta_mp3 - file_mp3) - 0.05,
            "pattern gap should exceed mp3 gap"
        );
    }

    #[test]
    fn e5_availability_rises_with_replicas() {
        let t = e5_replication(Scale::Smoke, 7);
        // within each availability block, found-rate is non-decreasing
        for chunk in t.rows.chunks(4) {
            let rates: Vec<f64> = chunk.iter().map(|r| r[3].parse().unwrap()).collect();
            assert!(
                rates.windows(2).all(|w| w[1] >= w[0] - 0.08),
                "rates should rise with replication: {rates:?}"
            );
        }
    }

    #[test]
    fn e6_message_ordering_holds() {
        let t = e6_protocols(Scale::Smoke, 7);
        let msgs: Vec<f64> = t.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        assert!(msgs[0] <= msgs[1], "Napster <= FastTrack: {msgs:?}");
        assert!(msgs[1] <= msgs[2], "FastTrack <= Gnutella: {msgs:?}");
    }

    #[test]
    fn e6_ttl_recall_monotone() {
        let t = e6_ttl_sweep(Scale::Smoke, 7);
        let recalls: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(
            recalls.windows(2).all(|w| w[1] >= w[0] - 1e-9),
            "recall grows with ttl: {recalls:?}"
        );
    }

    #[test]
    fn e6_dedup_saves_messages() {
        let t = e6_dedup_ablation(Scale::Smoke, 7);
        let with: f64 = t.rows[0][2].parse().unwrap();
        let without: f64 = t.rows[1][2].parse().unwrap();
        assert!(without > with, "no-dedup must cost more: {without} vs {with}");
    }

    #[test]
    fn e6_topology_ablation_runs_and_ring_is_slowest() {
        let t = e6_topologies(Scale::Smoke, 7);
        assert_eq!(t.rows.len(), 3);
        // at fixed TTL the ring covers the fewest peers → lowest recall
        let ring_recall: f64 = t.rows[0][2].parse().unwrap();
        let sw_recall: f64 = t.rows[1][2].parse().unwrap();
        assert!(
            ring_recall <= sw_recall + 1e-9,
            "ring {ring_recall} should not beat small world {sw_recall}"
        );
    }

    #[test]
    fn e8_reports_all_operations_with_sane_metrics() {
        let (t, report) = e8_index_scale_report(Scale::Smoke, 7);
        // sequential, batch, repo-batch, 4 query classes, combined,
        // remove, size
        assert_eq!(t.rows.len(), 10);
        assert_eq!(report.get("objects"), Some(10_000.0));
        for key in [
            "insert_per_sec",
            "batch_insert_per_sec",
            "repo_batch_docs_per_sec",
            "exact_query_us",
            "keyword_query_us",
            "wildcard_query_us",
            "boolean_query_us",
            "insert_plus_query_per_sec",
            "remove_us_per_object",
            "token_postings",
            "approx_bytes",
        ] {
            let v = report.get(key).unwrap_or_else(|| panic!("missing metric {key}"));
            assert!(v > 0.0, "{key} should be positive, got {v}");
        }
        let json = report.to_json();
        assert!(json.contains("\"name\": \"e8_index_scale\""));
        assert!(json.contains("insert_per_sec"));
    }

    #[test]
    fn e9_indexed_evaluation_beats_the_linear_baseline() {
        let (t, report) = e9_search_scale_report(Scale::Smoke, 7);
        // publish, indexed, linear, speedup, 3 protocols, sharded
        // publish, 4-point worker grid, grid speedup, 2 mixed rows,
        // Napster batch
        assert_eq!(t.rows.len(), 16);
        assert_eq!(report.get("objects"), Some(10_000.0));
        for key in [
            "peers",
            "queries",
            "publish_per_sec",
            "indexed_eval_per_sec",
            "linear_eval_per_sec",
            "indexed_speedup",
            "napster_searches_per_sec",
            "napster_msgs_per_query",
            "napster_success_rate",
            "fasttrack_searches_per_sec",
            "gnutella_searches_per_sec",
            "hardware_threads",
            "sharded_publish_per_sec",
            "scale_w1_searches_per_sec",
            "scale_w2_searches_per_sec",
            "scale_w4_searches_per_sec",
            "scale_w8_searches_per_sec",
            "read_speedup_8w",
            "mixed_write_ratio",
            "mixed_w1_ops_per_sec",
            "mixed_w8_ops_per_sec",
            "napster_batch_workers",
            "napster_batch_searches_per_sec",
        ] {
            let v = report.get(key).unwrap_or_else(|| panic!("missing metric {key}"));
            assert!(v > 0.0, "{key} should be positive, got {v}");
        }
        let speedup = report.get("indexed_speedup").unwrap();
        assert!(
            speedup >= 2.0,
            "indexed evaluation should clearly beat the linear scan even \
             at smoke scale, got {speedup:.2}x"
        );
        // the popular head of the Zipf query mix resolves on every
        // substrate — the centralized index answers exactly
        assert!(report.get("napster_success_rate").unwrap() > 0.5);
        let json = report.to_json();
        assert!(json.contains("\"name\": \"e9_search_scale\""));
        assert!(json.contains("indexed_speedup"));
    }

    #[test]
    fn e9_is_deterministic() {
        let run = || {
            let t = e9_search_scale(Scale::Smoke, 11);
            // hit counts and success rates are embedded in the detail
            // column; timing-derived cells (including the speedup row)
            // are excluded from the comparison
            t.rows
                .iter()
                .map(|r| r[4].clone())
                .filter(|d| !d.contains("searches/sec"))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn e10_guided_search_slashes_the_message_bill() {
        let (t, report) = e10_guided_search_report(Scale::Smoke, 7);
        // flood + guided rows for each of the two decentralized substrates
        assert_eq!(t.rows.len(), 4);
        for key in ["gnutella", "fasttrack"] {
            let flood = report.get(&format!("{key}_flood_msgs_per_query")).unwrap();
            let guided = report.get(&format!("{key}_guided_msgs_per_query")).unwrap();
            let reduction = report.get(&format!("{key}_guided_reduction")).unwrap();
            assert!(
                reduction >= 10.0,
                "{key}: guided search should cut messages ≥10x even at \
                 smoke scale, got {flood:.1} → {guided:.1} ({reduction:.1}x)"
            );
            let success = report.get(&format!("{key}_guided_success_rate")).unwrap();
            assert!(
                success >= 0.9,
                "{key}: guided search success fell to {success} at smoke scale"
            );
            // the flood rows pay no digest traffic; the guided rows do,
            // and the maintenance bill is reported, not hidden
            assert_eq!(report.get(&format!("{key}_flood_digest_msgs")), Some(0.0));
            assert!(report.get(&format!("{key}_guided_digest_msgs")).unwrap() > 0.0);
        }
        let json = report.to_json();
        assert!(json.contains("\"name\": \"e10_guided_search\""));
        assert!(json.contains("gnutella_guided_reduction"));
    }

    #[test]
    fn e11_smoke_covers_every_substrate_and_round_trips() {
        let (t, report) = e11_des_scale_report(Scale::Smoke, 7);
        // 3 protocols × 2 grid sizes + guided + churn rows
        assert_eq!(t.rows.len(), 8);
        for key in ["napster_500", "gnutella_500", "fasttrack_500", "fasttrack_churn_500"] {
            let success = report.get(&format!("{key}_success_rate")).unwrap();
            assert!(success > 0.0, "{key}: no query found anything at smoke scale");
            assert!(report.get(&format!("{key}_events_per_sec")).unwrap() > 0.0);
        }
        // guided search pays digest state but cuts per-query messages
        let flood = report.get("gnutella_500_msgs_per_query").unwrap();
        let guided = report.get("gnutella_guided_500_msgs_per_query").unwrap();
        assert!(guided < flood, "guided {guided:.1} should undercut flood {flood:.1}");
        // the JSON artifact round-trips through the report parser
        let json = report.to_json();
        let parsed = BenchReport::from_json(&json).expect("bench JSON parses");
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn e11_is_deterministic_modulo_wall_clock() {
        let run = || {
            let (t, _) = e11_des_scale_report(Scale::Smoke, 11);
            // drop the wall-clock and events/sec columns; all remaining
            // cells are functions of the seed alone
            t.rows
                .iter()
                .map(|r| [&r[0], &r[1], &r[3], &r[4], &r[5]].map(String::from))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn e10_is_deterministic() {
        let run = || {
            let t = e10_guided_search(Scale::Smoke, 11);
            // every column except the timing-free detail text is seeded;
            // the table carries no wall-clock cells at all
            t.rows.clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn e12_recovery_beats_the_xml_rebuild_and_round_trips() {
        let (t, report) = e12_durability_report(Scale::Smoke, 7);
        // publish (batched), publish (fsync each), compaction, recovery,
        // XML baseline, speedup, footprint
        assert_eq!(t.rows.len(), 7);
        assert_eq!(report.get("objects"), Some(2_000.0));
        for key in [
            "publish_durable_per_sec",
            "publish_fsync_each_per_sec",
            "compact_ms",
            "recovery_ms",
            "xml_rebuild_ms",
            "recovery_speedup",
            "durable_bytes",
            "xml_bytes",
        ] {
            let v = report.get(key).unwrap_or_else(|| panic!("missing metric {key}"));
            assert!(v > 0.0, "{key} should be positive, got {v}");
        }
        // replaying pre-tokenized segment frames must beat parsing and
        // re-tokenizing every XML wrapper even at 2k objects in a debug
        // build; the committed artifact pins the ≥5x criterion at 100k
        let speedup = report.get("recovery_speedup").unwrap();
        assert!(speedup >= 1.1, "recovery speedup fell to {speedup:.2}x at smoke scale");
        // the JSON artifact round-trips through the report parser
        let json = report.to_json();
        assert!(json.contains("\"name\": \"e12_durability\""));
        let parsed = BenchReport::from_json(&json).expect("bench JSON parses");
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn e7_smaller_profiles_lose_recall_but_shrink() {
        let t = e7_indexing();
        let postings: Vec<usize> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        let recalls: Vec<f64> = t.rows.iter().map(|r| r[5].parse().unwrap()).collect();
        assert!(postings.windows(2).all(|w| w[1] <= w[0]), "{postings:?}");
        assert_eq!(recalls[0], 1.0, "full profile is the ground truth");
        assert!(recalls[3] < recalls[0], "name-only loses recall: {recalls:?}");
    }
}
