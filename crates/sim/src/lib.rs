//! # up2p-sim
//!
//! Reproduction harness for the U-P2P paper: corpora, workloads, world
//! construction and the experiment scenarios E1–E11 whose tables are
//! recorded in EXPERIMENTS.md.
//!
//! The paper contains no quantitative evaluation (its three figures are
//! architecture diagrams and the bootstrap schema); DESIGN.md §4 maps
//! each figure/claim to the quantitative experiment implemented here.
//!
//! ```
//! use up2p_sim::{pattern_world, Scale};
//! use up2p_net::ProtocolKind;
//! use up2p_store::Query;
//!
//! let (mut world, community) = pattern_world(ProtocolKind::Napster, 16, 2, 7);
//! let out = world.search_from(3, &community, &Query::any_keyword("observer"));
//! assert!(!out.hits.is_empty());
//! // table generators regenerate the EXPERIMENTS.md rows:
//! let table = up2p_sim::e7_indexing();
//! assert!(table.to_markdown().contains("name only"));
//! # let _ = Scale::Smoke;
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod corpus;
mod experiment;
mod metrics;
mod report;
mod scenarios;
mod workload;

pub use experiment::{pattern_world, World};
pub use metrics::{retrieval_quality, RetrievalQuality, Series};
pub use report::{fnum, ms, BenchReport, Table};
pub use scenarios::{
    e1_pipeline, e2_generation, e3_discovery, e4_metadata, e5_replication, e6_dedup_ablation,
    e6_protocols, e6_topologies, e6_ttl_sweep, e7_indexing, e8_index_scale,
    e10_guided_search, e10_guided_search_report, e11_des_scale, e11_des_scale_report,
    e12_durability, e12_durability_report, e8_index_scale_report, e9_search_scale,
    e9_search_scale_report, run_all, Scale,
};
pub use workload::{assign_providers, rng_for, Zipf};
