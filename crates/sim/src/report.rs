//! Experiment report tables: ASCII rendering for terminals and CSV for
//! post-processing — the rows each bench/example prints for EXPERIMENTS.md.

use std::fmt;

/// A simple labelled table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table caption (e.g. `E6: protocol comparison, 256 peers`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells, each the same length as `headers`.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the cell count differs from the header count.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch in {:?}", self.title);
        self.rows.push(row);
        self
    }

    /// Renders as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        out.push_str(&self.headers.iter().map(|h| escape(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Renders as a GitHub-flavored markdown table (for EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("**{}**\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

impl fmt::Display for Table {
    /// Aligned ASCII rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>| {
            for w in &widths {
                write!(f, "+{}", "-".repeat(w + 2))?;
            }
            writeln!(f, "+")
        };
        line(f)?;
        for (i, h) in self.headers.iter().enumerate() {
            write!(f, "| {:width$} ", h, width = widths[i])?;
        }
        writeln!(f, "|")?;
        line(f)?;
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                write!(f, "| {:width$} ", cell, width = widths[i])?;
            }
            writeln!(f, "|")?;
        }
        line(f)
    }
}

/// Formats a float with sensible experiment precision.
pub fn fnum(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats virtual microseconds as milliseconds.
pub fn ms(us: u64) -> String {
    format!("{:.1}", us as f64 / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("T", &["protocol", "msgs", "recall"]);
        t.row(["Napster", "2", "1.00"]);
        t.row(["Gnutella", "410", "0.93"]);
        t
    }

    #[test]
    fn ascii_alignment() {
        let s = sample().to_string();
        assert!(s.contains("| protocol | msgs | recall |"));
        assert!(s.contains("| Gnutella | 410  | 0.93   |"));
    }

    #[test]
    fn csv_with_escaping() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(["x,y", "say \"hi\""]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn markdown_shape() {
        let md = sample().to_markdown();
        assert!(md.starts_with("**T**"));
        assert!(md.contains("| protocol | msgs | recall |"));
        assert!(md.contains("|---|---|---|"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        Table::new("T", &["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(0.1234), "0.123");
        assert_eq!(fnum(6.54321), "6.54");
        assert_eq!(fnum(1234.5), "1234"); // {:.0} rounds half to even
        assert_eq!(ms(20_500), "20.5");
    }
}
