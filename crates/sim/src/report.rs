//! Experiment report tables: ASCII rendering for terminals and CSV for
//! post-processing — the rows each bench/example prints for EXPERIMENTS.md.

use std::fmt;

/// A simple labelled table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table caption (e.g. `E6: protocol comparison, 256 peers`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells, each the same length as `headers`.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the cell count differs from the header count.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch in {:?}", self.title);
        self.rows.push(row);
        self
    }

    /// Renders as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        out.push_str(&self.headers.iter().map(|h| escape(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Renders as a GitHub-flavored markdown table (for EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("**{}**\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

impl fmt::Display for Table {
    /// Aligned ASCII rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>| {
            for w in &widths {
                write!(f, "+{}", "-".repeat(w + 2))?;
            }
            writeln!(f, "+")
        };
        line(f)?;
        for (i, h) in self.headers.iter().enumerate() {
            write!(f, "| {:width$} ", h, width = widths[i])?;
        }
        writeln!(f, "|")?;
        line(f)?;
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                write!(f, "| {:width$} ", cell, width = widths[i])?;
            }
            writeln!(f, "|")?;
        }
        line(f)
    }
}

/// A flat named-metric report serialized as JSON — the `BENCH_*.json`
/// perf-trajectory artifacts CI uploads (first series: E8 index scale).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchReport {
    /// Report name (e.g. `e8_index_scale`).
    pub name: String,
    metrics: Vec<(String, f64)>,
}

impl BenchReport {
    /// Creates an empty report.
    pub fn new(name: impl Into<String>) -> BenchReport {
        BenchReport { name: name.into(), metrics: Vec::new() }
    }

    /// Records (or overwrites) a metric.
    pub fn push(&mut self, key: &str, value: f64) -> &mut BenchReport {
        match self.metrics.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => self.metrics.push((key.to_string(), value)),
        }
        self
    }

    /// Reads a metric back.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }

    /// The scenario name this report belongs to.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Iterates the recorded metrics in insertion order.
    pub fn metrics(&self) -> impl Iterator<Item = (&str, f64)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Parses the JSON produced by [`BenchReport::to_json`] back into a
    /// report — the schema round-trip CI relies on for the committed
    /// `BENCH_*.json` artifacts. Accepts exactly the flat
    /// `{"name": …, "metrics": {…}}` shape with numeric or `null`
    /// values (`null` parses back as NaN, which re-serializes as
    /// `null`); anything else returns `None`.
    pub fn from_json(text: &str) -> Option<BenchReport> {
        let mut p = JsonCursor { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        p.require(b'{')?;
        let mut name = None;
        let mut metrics = Vec::new();
        let mut saw_metrics = false;
        loop {
            p.skip_ws();
            if p.eat(b'}') {
                break;
            }
            let key = p.string()?;
            p.skip_ws();
            p.require(b':')?;
            p.skip_ws();
            match key.as_str() {
                "name" => name = Some(p.string()?),
                "metrics" if !saw_metrics => {
                    saw_metrics = true;
                    p.require(b'{')?;
                    loop {
                        p.skip_ws();
                        if p.eat(b'}') {
                            break;
                        }
                        let k = p.string()?;
                        p.skip_ws();
                        p.require(b':')?;
                        p.skip_ws();
                        let v = if p.eat_word("null") { f64::NAN } else { p.number()? };
                        metrics.push((k, v));
                        p.skip_ws();
                        if !p.eat(b',') {
                            p.skip_ws();
                            p.require(b'}')?;
                            break;
                        }
                    }
                }
                _ => return None,
            }
            p.skip_ws();
            if !p.eat(b',') {
                p.skip_ws();
                p.require(b'}')?;
                break;
            }
        }
        p.skip_ws();
        if p.pos != p.bytes.len() || !saw_metrics {
            return None;
        }
        Some(BenchReport { name: name?, metrics })
    }

    /// Renders as a stable JSON object (insertion order preserved;
    /// non-finite values become `null`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"name\": \"{}\",\n", self.name.replace('"', "\\\"")));
        out.push_str("  \"metrics\": {\n");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 == self.metrics.len() { "" } else { "," };
            if v.is_finite() {
                out.push_str(&format!("    \"{}\": {v}{comma}\n", k.replace('"', "\\\"")));
            } else {
                out.push_str(&format!("    \"{}\": null{comma}\n", k.replace('"', "\\\"")));
            }
        }
        out.push_str("  }\n}\n");
        out
    }
}

/// Byte cursor for the minimal JSON subset [`BenchReport::from_json`]
/// accepts. Not a general JSON parser: strings support only `\"` and
/// `\\` escapes (the only ones `to_json` emits), and numbers are
/// whatever `f64::from_str` takes.
struct JsonCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonCursor<'_> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn require(&mut self, b: u8) -> Option<()> {
        self.eat(b).then_some(())
    }

    fn eat_word(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Option<String> {
        self.require(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos)? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    let escaped = self.bytes.get(self.pos + 1)?;
                    if *escaped != b'"' && *escaped != b'\\' {
                        return None;
                    }
                    out.push(*escaped as char);
                    self.pos += 2;
                }
                &b => {
                    out.push(b as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Option<f64> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos]).ok()?.parse().ok()
    }
}

/// Formats a float with sensible experiment precision.
pub fn fnum(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats virtual microseconds as milliseconds.
pub fn ms(us: u64) -> String {
    format!("{:.1}", us as f64 / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("T", &["protocol", "msgs", "recall"]);
        t.row(["Napster", "2", "1.00"]);
        t.row(["Gnutella", "410", "0.93"]);
        t
    }

    #[test]
    fn ascii_alignment() {
        let s = sample().to_string();
        assert!(s.contains("| protocol | msgs | recall |"));
        assert!(s.contains("| Gnutella | 410  | 0.93   |"));
    }

    #[test]
    fn csv_with_escaping() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(["x,y", "say \"hi\""]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn markdown_shape() {
        let md = sample().to_markdown();
        assert!(md.starts_with("**T**"));
        assert!(md.contains("| protocol | msgs | recall |"));
        assert!(md.contains("|---|---|---|"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        Table::new("T", &["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn bench_report_json_round_trip_shape() {
        let mut r = BenchReport::new("e8_index_scale");
        r.push("objects", 100000.0).push("insert_per_sec", 412345.5).push("bad", f64::NAN);
        r.push("objects", 90000.0); // overwrite keeps one entry
        assert_eq!(r.get("objects"), Some(90000.0));
        let json = r.to_json();
        assert!(json.contains("\"name\": \"e8_index_scale\""));
        assert!(json.contains("\"objects\": 90000"));
        assert!(json.contains("\"insert_per_sec\": 412345.5"));
        assert!(json.contains("\"bad\": null"));
        // valid object shape: balanced braces, no trailing comma
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains(",\n  }"));
    }

    #[test]
    fn bench_report_from_json_round_trips() {
        let mut r = BenchReport::new("e11_des_scale");
        r.push("peers", 100000.0).push("events_per_sec", 1234567.25).push("ratio", 0.5);
        let json = r.to_json();
        let parsed = BenchReport::from_json(&json).expect("own output parses");
        assert_eq!(parsed, r);
        assert_eq!(parsed.to_json(), json, "byte-exact round trip");
        // null metrics survive a full cycle as null
        r.push("bad", f64::NAN);
        let json = r.to_json();
        let parsed = BenchReport::from_json(&json).expect("null metric parses");
        assert!(parsed.get("bad").is_some_and(f64::is_nan));
        assert_eq!(parsed.to_json(), json);
        // malformed shapes are rejected, not mis-parsed
        for bad in [
            "",
            "{}",
            "[1,2]",
            "{\"name\": \"x\"}",
            "{\"name\": \"x\", \"metrics\": {\"k\": }}",
            "{\"name\": \"x\", \"metrics\": {}, \"extra\": 1}",
            "{\"name\": \"x\", \"metrics\": {}} trailing",
        ] {
            assert!(BenchReport::from_json(bad).is_none(), "accepted: {bad}");
        }
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(0.1234), "0.123");
        assert_eq!(fnum(6.54321), "6.54");
        assert_eq!(fnum(1234.5), "1234"); // {:.0} rounds half to even
        assert_eq!(ms(20_500), "20.5");
    }
}
