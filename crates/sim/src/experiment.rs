//! World construction: N servents over one simulated fabric.

use crate::corpus::{self, PatternRecord};
use crate::workload::{assign_providers, rng_for};
use rand::rngs::StdRng;
use up2p_core::{Community, PayloadPlane, Servent};
use up2p_net::{build_network, PeerId, PeerNetwork, ProtocolKind, SearchOutcome};
use up2p_store::Query;

/// A complete simulated deployment: fabric, payload plane and one servent
/// per peer.
pub struct World {
    /// The metadata/routing fabric.
    pub net: Box<dyn PeerNetwork + Send>,
    /// The payload plane.
    pub plane: PayloadPlane,
    /// One servent per peer, indexed by peer id.
    pub servents: Vec<Servent>,
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("protocol", &self.net.protocol_name())
            .field("peers", &self.servents.len())
            .finish()
    }
}

impl World {
    /// Builds a world of `peers` servents over the given protocol.
    pub fn new(kind: ProtocolKind, peers: usize, seed: u64) -> World {
        let net = build_network(kind, peers, seed);
        let servents = (0..peers).map(|i| Servent::new(PeerId(i as u32))).collect();
        World { net, plane: PayloadPlane::new(), servents }
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.servents.len()
    }

    /// `true` for a world without peers.
    pub fn is_empty(&self) -> bool {
        self.servents.is_empty()
    }

    /// Makes every servent a member of `community` (local join — the
    /// network discovery path is exercised by the E3 scenario itself).
    pub fn join_all(&mut self, community: &Community) {
        for s in &mut self.servents {
            s.join(community.clone());
        }
    }

    /// Publishes one object from the given peer.
    ///
    /// # Panics
    ///
    /// Panics on validation failure — corpus objects are known-valid.
    pub fn publish_values(
        &mut self,
        peer: usize,
        community: &Community,
        values: &[(&str, &str)],
    ) -> String {
        let s = &mut self.servents[peer];
        let obj = s.create_object(&community.id, values).expect("corpus object is valid");
        s.publish(&mut *self.net, &mut self.plane, &obj).expect("member of community")
    }

    /// Distributes the GoF corpus over the peers with `replicas`
    /// providers per pattern; returns `(pattern, key)` pairs.
    pub fn populate_patterns(
        &mut self,
        community: &Community,
        replicas: usize,
        rng: &mut StdRng,
    ) -> Vec<(&'static PatternRecord, String)> {
        let assignment =
            assign_providers(corpus::GOF_PATTERNS.len(), self.len(), replicas, rng);
        let mut out = Vec::new();
        for (p, providers) in corpus::GOF_PATTERNS.iter().zip(assignment) {
            let values = corpus::pattern_values(p);
            let mut key = String::new();
            for provider in providers {
                key = self.publish_values(provider as usize, community, &values);
            }
            out.push((p, key));
        }
        out
    }

    /// Runs one search from a peer.
    pub fn search_from(
        &mut self,
        peer: usize,
        community: &Community,
        query: &Query,
    ) -> SearchOutcome {
        self.servents[peer]
            .search(&mut *self.net, &community.id, query)
            .expect("member of community")
    }
}

/// Convenience: a fresh deterministic world populated with the GoF
/// design-pattern community, used by several scenarios and benches.
pub fn pattern_world(
    kind: ProtocolKind,
    peers: usize,
    replicas: usize,
    seed: u64,
) -> (World, Community) {
    let community = corpus::pattern_community();
    let mut world = World::new(kind, peers, seed);
    world.join_all(&community);
    let mut rng = rng_for(seed, "populate");
    world.populate_patterns(&community, replicas, &mut rng);
    (world, community)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_builds_and_searches_on_all_protocols() {
        for kind in [ProtocolKind::Napster, ProtocolKind::Gnutella, ProtocolKind::FastTrack] {
            let (mut world, community) = pattern_world(kind, 32, 2, 7);
            let out = world.search_from(5, &community, &Query::any_keyword("observer"));
            assert!(
                !out.hits.is_empty(),
                "{kind}: observer should be discoverable from peer 5"
            );
        }
    }

    #[test]
    fn populate_registers_23_objects() {
        let (world, community) = pattern_world(ProtocolKind::Napster, 16, 1, 3);
        let total: usize = world
            .servents
            .iter()
            .map(|s| s.local_objects(&community.id).len())
            .sum();
        assert_eq!(total, 23);
        assert_eq!(world.plane.len(), 23);
    }

    #[test]
    fn replicas_multiply_local_copies() {
        let (world, community) = pattern_world(ProtocolKind::Napster, 16, 3, 3);
        let total: usize = world
            .servents
            .iter()
            .map(|s| s.local_objects(&community.id).len())
            .sum();
        assert_eq!(total, 69, "23 patterns x 3 replicas");
    }

    #[test]
    fn worlds_are_deterministic() {
        let run = || {
            let (mut world, community) = pattern_world(ProtocolKind::Gnutella, 24, 2, 11);
            let out = world.search_from(3, &community, &Query::any_keyword("factory"));
            (out.hits.len(), out.messages, out.latency)
        };
        assert_eq!(run(), run());
    }
}
