//! Object corpora for the experiments.
//!
//! * **Design patterns** — the GoF-23 catalogue with full metadata: the
//!   stand-in for the Carleton Pattern Repository of §V (offline since the
//!   2000s), same field structure as the repository's DTD.
//! * **MP3s** — synthetic song metadata in the shape ID3 extraction
//!   produces (the paper's motivating Napster workload).
//! * **Molecules** — a small CML-flavored chemistry set (the paper's §I
//!   example of sharing "XML descriptions of chemical molecules").

use up2p_core::Community;
use up2p_schema::{FieldKind, SchemaBuilder};

/// One design pattern record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternRecord {
    /// Canonical name.
    pub name: &'static str,
    /// Also-known-as names (may be empty).
    pub aka: &'static str,
    /// GoF category: creational, structural, behavioral.
    pub category: &'static str,
    /// Intent sentence.
    pub intent: &'static str,
    /// Applicability sketch.
    pub applicability: &'static str,
    /// Key participants.
    pub participants: &'static str,
}

/// The GoF-23 catalogue.
pub const GOF_PATTERNS: [PatternRecord; 23] = [
    PatternRecord {
        name: "Abstract Factory",
        aka: "Kit",
        category: "creational",
        intent: "Provide an interface for creating families of related or dependent objects without specifying their concrete classes",
        applicability: "a system should be independent of how its products are created composed and represented",
        participants: "AbstractFactory ConcreteFactory AbstractProduct ConcreteProduct Client",
    },
    PatternRecord {
        name: "Builder",
        aka: "",
        category: "creational",
        intent: "Separate the construction of a complex object from its representation so that the same construction process can create different representations",
        applicability: "the algorithm for creating a complex object should be independent of the parts that make up the object",
        participants: "Builder ConcreteBuilder Director Product",
    },
    PatternRecord {
        name: "Factory Method",
        aka: "Virtual Constructor",
        category: "creational",
        intent: "Define an interface for creating an object but let subclasses decide which class to instantiate",
        applicability: "a class cannot anticipate the class of objects it must create",
        participants: "Product ConcreteProduct Creator ConcreteCreator",
    },
    PatternRecord {
        name: "Prototype",
        aka: "",
        category: "creational",
        intent: "Specify the kinds of objects to create using a prototypical instance and create new objects by copying this prototype",
        applicability: "a system should be independent of how its products are created when classes to instantiate are specified at run time",
        participants: "Prototype ConcretePrototype Client",
    },
    PatternRecord {
        name: "Singleton",
        aka: "",
        category: "creational",
        intent: "Ensure a class only has one instance and provide a global point of access to it",
        applicability: "there must be exactly one instance of a class accessible to clients from a well known access point",
        participants: "Singleton",
    },
    PatternRecord {
        name: "Adapter",
        aka: "Wrapper",
        category: "structural",
        intent: "Convert the interface of a class into another interface clients expect",
        applicability: "you want to use an existing class and its interface does not match the one you need",
        participants: "Target Client Adaptee Adapter",
    },
    PatternRecord {
        name: "Bridge",
        aka: "Handle Body",
        category: "structural",
        intent: "Decouple an abstraction from its implementation so that the two can vary independently",
        applicability: "you want to avoid a permanent binding between an abstraction and its implementation",
        participants: "Abstraction RefinedAbstraction Implementor ConcreteImplementor",
    },
    PatternRecord {
        name: "Composite",
        aka: "",
        category: "structural",
        intent: "Compose objects into tree structures to represent part whole hierarchies letting clients treat individual objects and compositions uniformly",
        applicability: "you want to represent part whole hierarchies of objects",
        participants: "Component Leaf Composite Client",
    },
    PatternRecord {
        name: "Decorator",
        aka: "Wrapper",
        category: "structural",
        intent: "Attach additional responsibilities to an object dynamically providing a flexible alternative to subclassing for extending functionality",
        applicability: "you need to add responsibilities to individual objects dynamically and transparently",
        participants: "Component ConcreteComponent Decorator ConcreteDecorator",
    },
    PatternRecord {
        name: "Facade",
        aka: "",
        category: "structural",
        intent: "Provide a unified interface to a set of interfaces in a subsystem defining a higher level interface that makes the subsystem easier to use",
        applicability: "you want to provide a simple interface to a complex subsystem",
        participants: "Facade SubsystemClasses",
    },
    PatternRecord {
        name: "Flyweight",
        aka: "",
        category: "structural",
        intent: "Use sharing to support large numbers of fine grained objects efficiently",
        applicability: "an application uses a large number of objects and storage costs are high",
        participants: "Flyweight ConcreteFlyweight FlyweightFactory Client",
    },
    PatternRecord {
        name: "Proxy",
        aka: "Surrogate",
        category: "structural",
        intent: "Provide a surrogate or placeholder for another object to control access to it",
        applicability: "you need a more versatile or sophisticated reference to an object than a simple pointer",
        participants: "Proxy Subject RealSubject",
    },
    PatternRecord {
        name: "Chain of Responsibility",
        aka: "",
        category: "behavioral",
        intent: "Avoid coupling the sender of a request to its receiver by giving more than one object a chance to handle the request",
        applicability: "more than one object may handle a request and the handler is not known a priori",
        participants: "Handler ConcreteHandler Client",
    },
    PatternRecord {
        name: "Command",
        aka: "Action Transaction",
        category: "behavioral",
        intent: "Encapsulate a request as an object letting you parameterize clients with different requests queue or log requests and support undoable operations",
        applicability: "you want to parameterize objects by an action to perform",
        participants: "Command ConcreteCommand Client Invoker Receiver",
    },
    PatternRecord {
        name: "Interpreter",
        aka: "",
        category: "behavioral",
        intent: "Given a language define a representation for its grammar along with an interpreter that uses the representation to interpret sentences in the language",
        applicability: "the grammar is simple and efficiency is not a critical concern",
        participants: "AbstractExpression TerminalExpression NonterminalExpression Context Client",
    },
    PatternRecord {
        name: "Iterator",
        aka: "Cursor",
        category: "behavioral",
        intent: "Provide a way to access the elements of an aggregate object sequentially without exposing its underlying representation",
        applicability: "to access an aggregate object's contents without exposing its internal representation",
        participants: "Iterator ConcreteIterator Aggregate ConcreteAggregate",
    },
    PatternRecord {
        name: "Mediator",
        aka: "",
        category: "behavioral",
        intent: "Define an object that encapsulates how a set of objects interact promoting loose coupling by keeping objects from referring to each other explicitly",
        applicability: "a set of objects communicate in well defined but complex ways",
        participants: "Mediator ConcreteMediator Colleague",
    },
    PatternRecord {
        name: "Memento",
        aka: "Token",
        category: "behavioral",
        intent: "Without violating encapsulation capture and externalize an object's internal state so that the object can be restored to this state later",
        applicability: "a snapshot of an object's state must be saved so it can be restored later",
        participants: "Memento Originator Caretaker",
    },
    PatternRecord {
        name: "Observer",
        aka: "Dependents Publish Subscribe",
        category: "behavioral",
        intent: "Define a one to many dependency between objects so that when one object changes state all its dependents are notified and updated automatically",
        applicability: "a change to one object requires changing others and you do not know how many objects need to be changed",
        participants: "Subject ConcreteSubject Observer ConcreteObserver",
    },
    PatternRecord {
        name: "State",
        aka: "Objects for States",
        category: "behavioral",
        intent: "Allow an object to alter its behavior when its internal state changes so the object will appear to change its class",
        applicability: "an object's behavior depends on its state and it must change its behavior at run time",
        participants: "Context State ConcreteState",
    },
    PatternRecord {
        name: "Strategy",
        aka: "Policy",
        category: "behavioral",
        intent: "Define a family of algorithms encapsulate each one and make them interchangeable letting the algorithm vary independently from clients that use it",
        applicability: "many related classes differ only in their behavior",
        participants: "Strategy ConcreteStrategy Context",
    },
    PatternRecord {
        name: "Template Method",
        aka: "",
        category: "behavioral",
        intent: "Define the skeleton of an algorithm in an operation deferring some steps to subclasses without changing the algorithm's structure",
        applicability: "to implement the invariant parts of an algorithm once and leave the variant parts to subclasses",
        participants: "AbstractClass ConcreteClass",
    },
    PatternRecord {
        name: "Visitor",
        aka: "",
        category: "behavioral",
        intent: "Represent an operation to be performed on the elements of an object structure letting you define a new operation without changing the classes of the elements",
        applicability: "an object structure contains many classes of objects with differing interfaces and you want to perform operations that depend on their concrete classes",
        participants: "Visitor ConcreteVisitor Element ConcreteElement ObjectStructure",
    },
];

/// Builds the design-pattern community (§V case study): searchable
/// name/aka/category/intent/applicability, unindexed bulky fields, and a
/// sample-code attachment.
pub fn pattern_community() -> Community {
    let mut b = SchemaBuilder::new("pattern");
    b.field(FieldKind::text("name").searchable())
        .field(FieldKind::text("aka").optional().searchable())
        .field(
            FieldKind::enumeration("category", ["creational", "structural", "behavioral"])
                .searchable(),
        )
        .field(FieldKind::text("intent").searchable())
        .field(FieldKind::text("applicability").searchable())
        .field(FieldKind::text("participants"))
        .field(FieldKind::text("collaborations").optional())
        .field(FieldKind::text("consequences").optional())
        .field(FieldKind::uri("samplecode").optional().attachment());
    Community::from_builder(
        "design-patterns",
        "Software design patterns in the Carleton Pattern Repository format",
        "patterns gof software design reuse",
        "software",
        "Gnutella",
        &b,
    )
    .expect("static schema is valid")
}

/// Form values for one GoF pattern, ready for `Servent::create_object`.
pub fn pattern_values(p: &PatternRecord) -> Vec<(&'static str, &'static str)> {
    let mut v = vec![
        ("name", p.name),
        ("category", p.category),
        ("intent", p.intent),
        ("applicability", p.applicability),
        ("participants", p.participants),
    ];
    if !p.aka.is_empty() {
        v.insert(1, ("aka", p.aka));
    }
    v
}

/// Filename a 2002 file-sharing client would expose for a pattern —
/// the *only* searchable surface of the Napster/Gnutella baseline in E4.
pub fn pattern_filename(p: &PatternRecord) -> String {
    format!("{}.pattern.xml", p.name.to_lowercase().replace(' ', "_"))
}

/// A synthetic MP3 record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SongRecord {
    /// Track title.
    pub title: String,
    /// Artist name.
    pub artist: String,
    /// Album title.
    pub album: String,
    /// Genre label.
    pub genre: String,
    /// Release year.
    pub year: u32,
}

const ARTISTS: [(&str, &str); 10] = [
    ("Miles Davis", "jazz"),
    ("John Coltrane", "jazz"),
    ("Bill Evans", "jazz"),
    ("Led Zeppelin", "rock"),
    ("Pink Floyd", "rock"),
    ("The Beatles", "rock"),
    ("Aretha Franklin", "soul"),
    ("Stevie Wonder", "soul"),
    ("Johnny Cash", "country"),
    ("Bob Dylan", "folk"),
];

const TITLE_WORDS: [&str; 16] = [
    "Blue", "Midnight", "Train", "River", "Echo", "Golden", "Silent", "Electric", "Velvet",
    "Broken", "Rising", "Lonesome", "Crystal", "Wandering", "Burning", "Hollow",
];

/// Deterministically generates `n` songs (index-seeded, no RNG needed).
pub fn songs(n: usize) -> Vec<SongRecord> {
    (0..n)
        .map(|i| {
            let (artist, genre) = ARTISTS[i % ARTISTS.len()];
            let w1 = TITLE_WORDS[i % TITLE_WORDS.len()];
            let w2 = TITLE_WORDS[(i * 7 + 3) % TITLE_WORDS.len()];
            SongRecord {
                title: format!("{w1} {w2} No. {}", i / TITLE_WORDS.len() + 1),
                artist: artist.to_string(),
                album: format!("{artist} Vol. {}", i / ARTISTS.len() + 1),
                genre: genre.to_string(),
                year: 1959 + (i as u32 % 43),
            }
        })
        .collect()
}

/// Builds the MP3 community (the paper's motivating Napster-style
/// workload) with ID3-shaped searchable fields.
pub fn mp3_community() -> Community {
    let mut b = SchemaBuilder::new("song");
    b.field(FieldKind::text("title").searchable())
        .field(FieldKind::text("artist").searchable())
        .field(FieldKind::text("album").searchable())
        .field(FieldKind::text("genre").searchable())
        .field(FieldKind::integer("year").optional())
        .field(FieldKind::uri("audio").attachment());
    Community::from_builder(
        "mp3",
        "MP3 trading with ID3 metadata search",
        "music mp3 audio songs",
        "music",
        "Napster",
        &b,
    )
    .expect("static schema is valid")
}

/// Filename a song would carry on disk — artist and title (descriptive,
/// unlike pattern filenames; E4's contrast case).
pub fn song_filename(s: &SongRecord) -> String {
    format!(
        "{}-{}.mp3",
        s.artist.to_lowercase().replace(' ', "_"),
        s.title.to_lowercase().replace(' ', "_")
    )
}

/// Genre enumeration of the synthetic track corpus — E8's exact-match
/// query terms are drawn from this list.
pub const TRACK_GENRES: [&str; 8] =
    ["rock", "jazz", "classical", "electronic", "folk", "blues", "soul", "ambient"];

/// Deterministically generates `n` synthetic track field sets for the
/// index-scale experiment (E8): a Zipf-skewed vocabulary of title words,
/// a long tail of artists, a small genre enumeration and a year — the
/// shape of a large music-sharing community's metadata.
pub fn synthetic_track_fields(n: usize, seed: u64) -> Vec<Vec<(String, String)>> {
    use crate::workload::{rng_for, Zipf};
    use rand::Rng;
    let mut rng = rng_for(seed, "e8-corpus");
    let vocab = Zipf::new(5000, 1.05);
    let artists = Zipf::new(1000, 1.05);
    (0..n)
        .map(|i| {
            let title = format!(
                "word{:04} word{:04} word{:04}",
                vocab.sample(&mut rng),
                vocab.sample(&mut rng),
                vocab.sample(&mut rng)
            );
            vec![
                ("track/title".to_string(), title),
                ("track/artist".to_string(), format!("artist{:03}", artists.sample(&mut rng))),
                (
                    "track/genre".to_string(),
                    TRACK_GENRES[rng.gen_range(0..TRACK_GENRES.len())].to_string(),
                ),
                ("track/year".to_string(), format!("{}", 1950 + i % 70)),
            ]
        })
        .collect()
}

/// A molecule record (CML-flavored, §I example).
#[derive(Debug, Clone, PartialEq)]
pub struct MoleculeRecord {
    /// Trivial name.
    pub name: &'static str,
    /// Chemical formula.
    pub formula: &'static str,
    /// Molar mass in g/mol.
    pub weight: f64,
    /// Phase at room temperature.
    pub phase: &'static str,
}

/// A small chemistry corpus.
pub const MOLECULES: [MoleculeRecord; 12] = [
    MoleculeRecord { name: "water", formula: "H2O", weight: 18.015, phase: "liquid" },
    MoleculeRecord { name: "carbon dioxide", formula: "CO2", weight: 44.009, phase: "gas" },
    MoleculeRecord { name: "methane", formula: "CH4", weight: 16.043, phase: "gas" },
    MoleculeRecord { name: "ethanol", formula: "C2H5OH", weight: 46.069, phase: "liquid" },
    MoleculeRecord { name: "glucose", formula: "C6H12O6", weight: 180.156, phase: "solid" },
    MoleculeRecord { name: "ammonia", formula: "NH3", weight: 17.031, phase: "gas" },
    MoleculeRecord { name: "benzene", formula: "C6H6", weight: 78.114, phase: "liquid" },
    MoleculeRecord { name: "caffeine", formula: "C8H10N4O2", weight: 194.19, phase: "solid" },
    MoleculeRecord { name: "aspirin", formula: "C9H8O4", weight: 180.158, phase: "solid" },
    MoleculeRecord { name: "sodium chloride", formula: "NaCl", weight: 58.443, phase: "solid" },
    MoleculeRecord { name: "sulfuric acid", formula: "H2SO4", weight: 98.079, phase: "liquid" },
    MoleculeRecord { name: "ozone", formula: "O3", weight: 47.998, phase: "gas" },
];

/// Builds the molecule community.
pub fn molecule_community() -> Community {
    let mut b = SchemaBuilder::new("molecule");
    b.field(FieldKind::text("name").searchable())
        .field(FieldKind::text("formula").searchable())
        .field(FieldKind::decimal("weight"))
        .field(FieldKind::enumeration("phase", ["solid", "liquid", "gas"]).searchable());
    Community::from_builder(
        "molecules",
        "Chemical Markup Language molecule descriptions",
        "chemistry cml molecules science",
        "science",
        "FastTrack",
        &b,
    )
    .expect("static schema is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use up2p_core::{FormKind, FormModel};

    #[test]
    fn gof_catalogue_is_complete_and_unique() {
        assert_eq!(GOF_PATTERNS.len(), 23);
        let mut names: Vec<&str> = GOF_PATTERNS.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 23);
        let by_cat = |c: &str| GOF_PATTERNS.iter().filter(|p| p.category == c).count();
        assert_eq!(by_cat("creational"), 5);
        assert_eq!(by_cat("structural"), 7);
        assert_eq!(by_cat("behavioral"), 11);
    }

    #[test]
    fn every_pattern_builds_a_valid_object() {
        let community = pattern_community();
        let form = FormModel::derive(&community, FormKind::Create);
        for p in &GOF_PATTERNS {
            let values = pattern_values(p);
            let doc = form.fill("pattern", &values).unwrap();
            community.validate(&doc).unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn songs_are_deterministic_and_valid() {
        let a = songs(50);
        let b = songs(50);
        assert_eq!(a, b);
        let community = mp3_community();
        let form = FormModel::derive(&community, FormKind::Create);
        for s in &a[..10] {
            let year = s.year.to_string();
            let doc = form
                .fill(
                    "song",
                    &[
                        ("title", s.title.as_str()),
                        ("artist", s.artist.as_str()),
                        ("album", s.album.as_str()),
                        ("genre", s.genre.as_str()),
                        ("year", year.as_str()),
                        ("audio", "up2p:attachment:x"),
                    ],
                )
                .unwrap();
            community.validate(&doc).unwrap();
        }
    }

    #[test]
    fn filenames_reflect_their_surface() {
        let p = &GOF_PATTERNS[18];
        assert_eq!(pattern_filename(p), "observer.pattern.xml");
        let s = &songs(1)[0];
        assert!(song_filename(s).contains("miles_davis"));
    }

    #[test]
    fn molecule_objects_validate() {
        let community = molecule_community();
        let form = FormModel::derive(&community, FormKind::Create);
        for m in &MOLECULES {
            let w = m.weight.to_string();
            let doc = form
                .fill(
                    "molecule",
                    &[
                        ("name", m.name),
                        ("formula", m.formula),
                        ("weight", w.as_str()),
                        ("phase", m.phase),
                    ],
                )
                .unwrap();
            community.validate(&doc).unwrap();
        }
    }

    #[test]
    fn communities_have_distinct_ids() {
        let ids =
            [pattern_community().id, mp3_community().id, molecule_community().id];
        assert_ne!(ids[0], ids[1]);
        assert_ne!(ids[1], ids[2]);
        assert_ne!(ids[0], ids[2]);
    }
}
