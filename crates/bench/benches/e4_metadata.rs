//! E4 (§II): metadata search vs filename substring matching on the GoF
//! corpus — the query-side cost of both methods (quality is reported by
//! the scenario table; here we show metadata search is also *fast*).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use up2p_bench::pattern_repository;
use up2p_sim::corpus::{pattern_filename, GOF_PATTERNS};
use up2p_store::Query;

fn bench_metadata_vs_filename(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_metadata");
    let community = up2p_sim::corpus::pattern_community();
    let repo = pattern_repository(&community.indexed_paths());
    let filenames: Vec<String> = GOF_PATTERNS.iter().map(pattern_filename).collect();

    let term = "interface";
    g.bench_function("metadata_keyword_query", |b| {
        b.iter(|| repo.search(None, black_box(&Query::any_keyword(term))).len())
    });

    g.bench_function("metadata_boolean_query", |b| {
        let q = Query::and([Query::any_keyword("interface"), Query::eq("category", "creational")]);
        b.iter(|| repo.search(None, black_box(&q)).len())
    });

    g.bench_function("filename_substring_scan", |b| {
        b.iter(|| filenames.iter().filter(|f| f.contains(black_box(term))).count())
    });

    g.bench_function("wildcard_value_scan", |b| {
        let q = up2p_store::parse_cmip("(intent=*object*)").unwrap();
        b.iter(|| repo.search(None, black_box(&q)).len())
    });

    g.finish();
}

criterion_group!(benches, bench_metadata_vs_filename);
criterion_main!(benches);
