//! E3 (Fig. 3): one community-discovery query on each substrate, with
//! 16 communities published into a 64-peer fabric.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use up2p_core::{Community, PayloadPlane, Servent};
use up2p_net::{build_network, PeerId, PeerNetwork, ProtocolKind};
use up2p_schema::{FieldKind, SchemaBuilder};
use up2p_store::Query;

struct Setup {
    net: Box<dyn PeerNetwork + Send>,
    seeker: Servent,
}

fn setup(kind: ProtocolKind) -> Setup {
    let mut net = build_network(kind, 64, 42);
    let mut plane = PayloadPlane::new();
    for i in 0..16 {
        let mut b = SchemaBuilder::new("item");
        b.field(FieldKind::text("name").searchable());
        let community = Community::from_builder(
            &format!("community-{i}"),
            &format!("resources about domain{i:03}"),
            &format!("domain{i:03}"),
            "generated",
            kind.schema_value(),
            &b,
        )
        .expect("valid");
        let mut founder = Servent::new(PeerId((i * 3 + 1) as u32));
        founder.publish_community(&mut *net, &mut plane, &community).expect("publish");
    }
    Setup { net, seeker: Servent::new(PeerId(60)) }
}

fn bench_discovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_discovery");
    for kind in [ProtocolKind::Napster, ProtocolKind::FastTrack, ProtocolKind::Gnutella] {
        let mut s = setup(kind);
        let query = Query::any_keyword("domain007");
        g.bench_with_input(
            BenchmarkId::new("discover_community", kind.schema_value()),
            &query,
            |b, query| {
                b.iter(|| {
                    let out = s
                        .seeker
                        .discover_communities(&mut *s.net, black_box(query))
                        .unwrap();
                    assert!(!out.hits.is_empty());
                    out.messages
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_discovery);
criterion_main!(benches);
