//! E9 (multi-core serving plane): compile-once stylesheet cache vs
//! parse-per-call — what [`StylesheetCache`] buys a servent that renders
//! many objects through the same community sheets. The grid isolates the
//! three costs: compiling a sheet, a warm cache hit (hash + read-lock
//! lookup), and the end-to-end apply with and without the cache.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use up2p_core::stylesheets::default_index_xsl;
use up2p_core::{Community, FormKind, FormModel, StylesheetCache};
use up2p_schema::{FieldKind, SchemaBuilder};
use up2p_xslt::Stylesheet;

/// E2-shape community of `n` fields — the same schema family the
/// generation bench measures, so the sheet sizes line up across benches.
fn community_of_width(n: usize) -> Community {
    let mut b = SchemaBuilder::new("object");
    for i in 0..n {
        let f = match i % 4 {
            0 => FieldKind::text(format!("text{i}")).searchable(),
            1 => FieldKind::integer(format!("num{i}")),
            2 => FieldKind::enumeration(format!("enum{i}"), ["a", "b", "c"]).searchable(),
            _ => FieldKind::uri(format!("uri{i}")),
        };
        b.field(f);
    }
    Community::from_builder("cache", "d", "k", "c", "", &b).expect("valid")
}

fn bench_stylesheet_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_stylesheet_cache");
    for &n in &[4usize, 16, 64] {
        let community = community_of_width(n);
        let xsl = default_index_xsl(&community);
        let doc = FormModel::derive(&community, FormKind::Create).to_document();

        g.bench_with_input(BenchmarkId::new("compile_only", n), &xsl, |b, xsl| {
            b.iter(|| Stylesheet::parse(black_box(xsl)).unwrap().template_count())
        });

        // the pre-cache serving path: every application recompiles
        g.bench_with_input(BenchmarkId::new("parse_per_call", n), &(&xsl, &doc), |b, (xsl, doc)| {
            b.iter(|| {
                let sheet = Stylesheet::parse(black_box(*xsl)).unwrap();
                sheet.apply_to_string(black_box(*doc)).unwrap()
            })
        });

        // warm local cache: the sheet compiles once, every iteration is a
        // hash + read-lock lookup plus the apply itself
        let cache = StylesheetCache::new();
        cache.get(&xsl).expect("sheet compiles");
        g.bench_with_input(BenchmarkId::new("cached_apply", n), &(&xsl, &doc), |b, (xsl, doc)| {
            b.iter(|| {
                let sheet = cache.get(black_box(*xsl)).unwrap();
                sheet.apply_to_string(black_box(*doc)).unwrap()
            })
        });

        g.bench_with_input(BenchmarkId::new("cache_hit_lookup", n), &xsl, |b, xsl| {
            b.iter(|| cache.get(black_box(xsl)).unwrap().template_count())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_stylesheet_cache);
criterion_main!(benches);
