//! E6 (§IV-B): the same search on all three substrates at 128 peers,
//! plus the duplicate-suppression ablation and a TTL sweep point.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use up2p_core::{PayloadPlane, Servent};
use up2p_net::{
    ConstantLatency, FloodingConfig, FloodingNetwork, PeerId, ProtocolKind, Topology,
};
use up2p_sim::{pattern_world, rng_for, World};
use up2p_store::Query;

fn bench_protocols(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_protocols");
    let query = Query::keyword("name", "observer");

    for kind in [ProtocolKind::Napster, ProtocolKind::FastTrack, ProtocolKind::Gnutella] {
        let (mut world, community) = pattern_world(kind, 128, 2, 42);
        g.bench_with_input(
            BenchmarkId::new("search_128_peers", kind.schema_value()),
            &query,
            |b, query| {
                b.iter(|| world.search_from(100, &community, black_box(query)).messages)
            },
        );
    }

    for dedup in [true, false] {
        let topo = Topology::small_world(64, 3, 0.3, 42);
        let net = FloodingNetwork::new(
            topo,
            Box::new(ConstantLatency(20_000)),
            FloodingConfig { ttl: 5, dedup, ..FloodingConfig::default() },
        );
        let community = up2p_sim::corpus::pattern_community();
        let mut world = World {
            net: Box::new(net),
            plane: PayloadPlane::new(),
            servents: (0..64).map(|i| Servent::new(PeerId(i as u32))).collect(),
        };
        world.join_all(&community);
        let mut rng = rng_for(42, "bench-e6");
        world.populate_patterns(&community, 1, &mut rng);
        g.bench_with_input(
            BenchmarkId::new("flooding_dedup", dedup),
            &query,
            |b, query| {
                b.iter(|| world.search_from(7, &community, black_box(query)).messages)
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
