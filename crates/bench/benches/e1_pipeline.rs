//! E1 (Fig. 1): kernels of the generative shared-object pipeline —
//! schema parse, form derivation, fill+validate, index insert, XSLT view
//! render, indexed query.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use up2p_bench::{pattern_objects, pattern_repository};
use up2p_core::{FormKind, FormModel};
use up2p_sim::corpus::{pattern_values, GOF_PATTERNS};
use up2p_store::Query;

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_pipeline");

    g.bench_function("schema_parse_fig3", |b| {
        b.iter(|| up2p_schema::parse_schema_str(black_box(up2p_core::ROOT_SCHEMA_XSD)).unwrap())
    });

    let (community, objects) = pattern_objects();
    g.bench_function("form_derive", |b| {
        b.iter(|| FormModel::derive(black_box(&community), FormKind::Create))
    });

    let form = FormModel::derive(&community, FormKind::Create);
    let values = pattern_values(&GOF_PATTERNS[18]); // Observer
    g.bench_function("fill_and_validate", |b| {
        b.iter(|| {
            let doc = form.fill("pattern", black_box(&values)).unwrap();
            community.validate(&doc).unwrap();
            doc
        })
    });

    let paths = community.indexed_paths();
    g.bench_function("index_insert_23_objects", |b| {
        b.iter(|| {
            let mut repo = up2p_store::Repository::new();
            for o in &objects {
                repo.insert_doc(&community.id, o.doc.clone(), &paths);
            }
            repo.len()
        })
    });

    g.bench_function("xslt_view_render", |b| {
        b.iter(|| up2p_core::stylesheets::render_view(black_box(&objects[18].doc), None).unwrap())
    });

    let repo = pattern_repository(&paths);
    let query = Query::any_keyword("factory");
    g.bench_function("indexed_keyword_query", |b| {
        b.iter(|| repo.search(None, black_box(&query)).len())
    });

    let cmip = "(&(category=behavioral)(intent~=algorithm))";
    g.bench_function("cmip_parse_and_query", |b| {
        b.iter(|| repo.search_cmip(None, black_box(cmip)).unwrap().len())
    });

    let xpath = "/pattern[category='behavioral']";
    g.bench_function("xpath_query_per_document", |b| {
        b.iter(|| repo.xpath_search(None, black_box(xpath)).unwrap().len())
    });

    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
