//! E5 (§V): search cost under churn as replication varies — flooding
//! substrate, liveness snapshot applied per batch.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use up2p_net::{churn, PeerId};
use up2p_sim::{pattern_world, rng_for};
use up2p_store::Query;

fn bench_replication(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_replication");
    for &replicas in &[1usize, 4, 8] {
        let (mut world, community) =
            pattern_world(up2p_net::ProtocolKind::Gnutella, 64, replicas, 42);
        let mut rng = rng_for(42, "bench-e5");
        churn::apply_snapshot(&mut *world.net, 0.7, &[PeerId(0)], &mut rng);
        let query = Query::keyword("name", "observer");
        g.bench_with_input(
            BenchmarkId::new("flood_search_a0.7", replicas),
            &query,
            |b, query| {
                b.iter(|| {
                    let out = world.search_from(0, &community, black_box(query));
                    out.hits.len()
                })
            },
        );
        churn::revive_all(&mut *world.net);
    }

    // download+replicate round trip (the mechanism E5 relies on)
    let (mut world, community) = pattern_world(up2p_net::ProtocolKind::Napster, 16, 1, 42);
    g.bench_function("download_and_replicate", |b| {
        b.iter(|| {
            let out = world.search_from(3, &community, &Query::keyword("name", "observer"));
            let hit = out.hits.first().expect("observer exists").clone();
            let world_ref = &mut world;
            let obj = world_ref.servents[3]
                .download(&mut *world_ref.net, &mut world_ref.plane, &hit)
                .expect("download");
            black_box(obj.key)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_replication);
criterion_main!(benches);
