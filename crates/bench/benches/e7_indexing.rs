//! E7 (§V): index-profile ablation — build cost and query latency with
//! full metadata vs filtered attribute sets.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use up2p_bench::{pattern_objects, pattern_repository};
use up2p_store::{Query, Repository};

fn bench_indexing(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_indexing");
    let (community, objects) = pattern_objects();

    let profiles: Vec<(&str, Vec<String>)> = vec![
        (
            "full",
            up2p_schema::leaf_fields(&community.schema)
                .into_iter()
                .map(|f| f.path)
                .collect(),
        ),
        ("searchable", community.indexed_paths()),
        ("name_only", vec!["pattern/name".to_string()]),
    ];

    for (name, paths) in &profiles {
        g.bench_with_input(BenchmarkId::new("index_build", name), paths, |b, paths| {
            b.iter(|| {
                let mut repo = Repository::new();
                for o in &objects {
                    repo.insert_doc(&community.id, o.doc.clone(), paths);
                }
                repo.index_stats().token_postings
            })
        });

        let repo = pattern_repository(paths);
        let query = Query::any_keyword("interface");
        g.bench_with_input(BenchmarkId::new("query", name), &query, |b, query| {
            b.iter(|| repo.search(None, black_box(query)).len())
        });
    }

    // the indexer-stylesheet path vs native extraction (equivalent
    // output, different cost — the Fig. 1 "Indexed Attribute XSL")
    let xsl = up2p_core::stylesheets::default_index_xsl(&community);
    let doc = &objects[18].doc;
    g.bench_function("extract_via_xslt_filter", |b| {
        b.iter(|| up2p_core::stylesheets::apply_index_style(&xsl, black_box(doc)).unwrap().len())
    });
    let paths = community.indexed_paths();
    g.bench_function("extract_native", |b| {
        b.iter(|| Repository::extract_fields(black_box(doc), &paths).len())
    });

    g.finish();
}

criterion_group!(benches, bench_indexing);
criterion_main!(benches);
