//! E2 (Fig. 2): interface generation vs schema size — the cost of
//! deriving and rendering forms from schemas of growing width.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use up2p_core::{Community, FormKind, FormModel};
use up2p_schema::{FieldKind, SchemaBuilder};

fn schema_of_width(n: usize) -> (String, Community) {
    let mut b = SchemaBuilder::new("object");
    for i in 0..n {
        let f = match i % 4 {
            0 => FieldKind::text(format!("text{i}")).searchable(),
            1 => FieldKind::integer(format!("num{i}")),
            2 => FieldKind::enumeration(format!("enum{i}"), ["a", "b", "c"]).searchable(),
            _ => FieldKind::uri(format!("uri{i}")),
        };
        b.field(f);
    }
    let xsd = b.to_xsd();
    let community = Community::from_builder("gen", "d", "k", "c", "", &b).expect("valid");
    (xsd, community)
}

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_generation");
    for &n in &[4usize, 16, 64] {
        let (xsd, community) = schema_of_width(n);

        g.bench_with_input(BenchmarkId::new("xsd_parse", n), &xsd, |b, xsd| {
            b.iter(|| up2p_schema::parse_schema_str(black_box(xsd)).unwrap())
        });

        g.bench_with_input(BenchmarkId::new("form_derive", n), &community, |b, community| {
            b.iter(|| FormModel::derive(black_box(community), FormKind::Create))
        });

        let form_doc = FormModel::derive(&community, FormKind::Create).to_document();
        g.bench_with_input(BenchmarkId::new("form_render_html", n), &form_doc, |b, doc| {
            b.iter(|| up2p_core::stylesheets::render_form(black_box(doc), None).unwrap())
        });

        g.bench_with_input(
            BenchmarkId::new("index_xsl_generate_and_compile", n),
            &community,
            |b, community| {
                b.iter(|| {
                    let xsl = up2p_core::stylesheets::default_index_xsl(black_box(community));
                    up2p_xslt::Stylesheet::parse(&xsl).unwrap().template_count()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
