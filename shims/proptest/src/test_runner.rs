//! Test-runner plumbing: config, deterministic per-case RNG and the
//! error type `prop_assert*` / `prop_assume!` produce.

/// Per-suite configuration. Only `cases` is meaningful in this shim;
/// the struct is non-exhaustive-by-convention via `Default`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Requested number of cases per property.
    pub cases: u32,
}

/// Hard ceiling keeping the whole workspace's property suites fast even
/// if a config asks for more.
const MAX_CASES: u32 = 256;
const DEFAULT_CASES: u32 = 32;

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: DEFAULT_CASES }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }

    /// The case count actually run: `PROPTEST_CASES` env override, else
    /// the configured count, clamped to [1, MAX_CASES].
    pub fn effective_cases(&self) -> u32 {
        let env = std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse::<u32>().ok());
        self.effective_cases_with(env)
    }

    fn effective_cases_with(&self, env_override: Option<u32>) -> u32 {
        env_override.unwrap_or(self.cases).clamp(1, MAX_CASES)
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The inputs violated a `prop_assume!` precondition; the case is
    /// skipped, not failed.
    Reject(String),
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// The base seed: fixed constant unless `PROPTEST_SEED` overrides it.
pub fn base_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| {
            let v = v.trim();
            v.strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16).ok())
                .unwrap_or_else(|| v.parse::<u64>().ok())
        })
        .unwrap_or(0x5EED_u64 << 16 | 0x2b2b)
}

/// Deterministic per-case generator (SplitMix64 over a seed derived
/// from base seed, test path and case index).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl TestRng {
    pub fn for_case(test_path: &str, case: u32) -> TestRng {
        let seed = base_seed() ^ fnv1a(test_path.as_bytes()) ^ ((case as u64) << 32 | case as u64);
        // Burn one output so nearby seeds decorrelate.
        let mut rng = TestRng { state: seed };
        rng.next_u64();
        rng
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.below((hi - lo) as u64) as usize
    }

    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// True with probability `num/denom`.
    pub fn chance(&mut self, num: u64, denom: u64) -> bool {
        self.below(denom) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_case_same_stream() {
        let mut a = TestRng::for_case("mod::t", 3);
        let mut b = TestRng::for_case("mod::t", 3);
        let mut c = TestRng::for_case("mod::t", 4);
        let mut d = TestRng::for_case("mod::u", 3);
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        assert_eq!(xs, (0..4).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(xs, (0..4).map(|_| c.next_u64()).collect::<Vec<_>>());
        assert_ne!(xs, (0..4).map(|_| d.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn config_defaults_and_caps() {
        assert_eq!(ProptestConfig::default().cases, 32);
        assert_eq!(ProptestConfig::with_cases(9999).effective_cases_with(None), 256);
        assert_eq!(ProptestConfig::with_cases(0).effective_cases_with(None), 1);
        assert_eq!(ProptestConfig::with_cases(10).effective_cases_with(Some(64)), 64);
        assert_eq!(ProptestConfig::with_cases(10).effective_cases_with(Some(0)), 1);
    }
}
