//! The [`Strategy`] trait and core combinators.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Arc;

/// A recipe for generating values of one type. Unlike the real crate
/// there is no value-tree/shrinking layer: `generate` produces the final
/// value directly from the deterministic per-case RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates with a second strategy derived from this one's value.
    fn prop_flat_map<O, S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy<Value = O>,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying the predicate (bounded retries, then
    /// the last candidate wins — no global rejection bookkeeping).
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    /// Builds recursive values: `recurse` receives a strategy for the
    /// "inner" levels and returns the strategy for one level up. The
    /// result mixes leaves and nested values up to `depth` levels.
    fn prop_recursive<S, F>(self, depth: u32, _desired_size: u32, _expected_branch: u32, recurse: F) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            // At each level the recursive positions pick a leaf half the
            // time, so generated trees stay small but vary in depth.
            let inner = OneOf::new(vec![(1, leaf.clone()), (1, level.clone())]).boxed();
            level = recurse(inner).boxed();
        }
        OneOf::new(vec![(1, leaf), (2, level)]).boxed()
    }

    /// Type-erases the strategy (cheaply cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy { inner: Arc::new(self) }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, O, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy<Value = O>,
    F: Fn(S::Value) -> S2,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let mut candidate = self.inner.generate(rng);
        for _ in 0..100 {
            if (self.f)(&candidate) {
                break;
            }
            candidate = self.inner.generate(rng);
        }
        candidate
    }
}

/// Type-erased, reference-counted strategy.
pub struct BoxedStrategy<T> {
    inner: Arc<dyn StrategyObject<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy { inner: Arc::clone(&self.inner) }
    }
}

trait StrategyObject<T> {
    fn generate_obj(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> StrategyObject<S::Value> for S {
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_obj(rng)
    }
}

/// Weighted choice between strategies of one value type (`prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> OneOf<T> {
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> OneOf<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        let total_weight = options.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
        OneOf { options, total_weight }
    }
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> OneOf<T> {
        OneOf { options: self.options.clone(), total_weight: self.total_weight }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (weight, strat) in &self.options {
            if pick < *weight as u64 {
                return strat.generate(rng);
            }
            pick -= *weight as u64;
        }
        self.options[0].1.generate(rng)
    }
}

/// `any::<T>()` — the canonical strategy for a whole type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        crate::string::printable_char(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        })*
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy::tests", 0)
    }

    #[test]
    fn just_maps_and_tuples() {
        let s = (Just(2u32), 0u8..5).prop_map(|(a, b)| a as u64 + b as u64);
        let mut r = rng();
        for _ in 0..50 {
            let v = s.generate(&mut r);
            assert!((2..7).contains(&v));
        }
    }

    #[test]
    fn oneof_honors_weights() {
        let s: OneOf<u8> = OneOf::new(vec![(0, Just(1u8).boxed()), (5, Just(2u8).boxed())]);
        let mut r = rng();
        for _ in 0..20 {
            assert_eq!(s.generate(&mut r), 2);
        }
    }

    #[test]
    fn recursive_terminates_and_varies() {
        #[derive(Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = (0u8..10).prop_map(Tree::Leaf).prop_recursive(3, 16, 3, |inner| {
            crate::collection::vec(inner, 1..4).prop_map(Tree::Node)
        });
        let mut r = rng();
        let mut max_depth = 0;
        for _ in 0..100 {
            max_depth = max_depth.max(depth(&s.generate(&mut r)));
        }
        assert!(max_depth >= 1, "recursion never fired");
        assert!(max_depth <= 3, "depth bound violated: {max_depth}");
    }

    #[test]
    fn filter_applies() {
        let s = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        let mut r = rng();
        for _ in 0..50 {
            assert_eq!(s.generate(&mut r) % 2, 0);
        }
    }
}
