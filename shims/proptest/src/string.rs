//! Regex-literal string strategies: `"[a-z][a-z0-9]{0,8}"` as a
//! `Strategy<Value = String>`, covering the pattern subset the
//! workspace's suites use — character classes (with ranges, negation
//! and `&&`-intersection), the `\PC` "any non-control" escape, literal
//! characters, and the `{m}`, `{m,n}`, `?`, `*`, `+` quantifiers.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The sampling universe for `\PC` and negated classes: printable,
/// non-control codepoints across several scripts so unicode handling is
/// exercised without ever generating control characters.
const UNIVERSE: &[(u32, u32)] = &[
    (0x20, 0x7E),     // ASCII printable
    (0xA1, 0xFF),     // Latin-1 supplement (printable part)
    (0x100, 0x17F),   // Latin Extended-A
    (0x391, 0x3C9),   // Greek
    (0x2600, 0x2603), // misc symbols (snowman and friends)
    (0x4E00, 0x4E2F), // a few CJK ideographs
];

/// A set of codepoints as sorted, disjoint, inclusive ranges.
#[derive(Debug, Clone, Default)]
struct CharSet {
    ranges: Vec<(u32, u32)>,
}

impl CharSet {
    fn universe() -> CharSet {
        CharSet { ranges: UNIVERSE.to_vec() }
    }

    fn push(&mut self, lo: u32, hi: u32) {
        self.ranges.push((lo, hi));
    }

    fn normalize(&mut self) {
        self.ranges.sort_unstable();
        let mut merged: Vec<(u32, u32)> = Vec::with_capacity(self.ranges.len());
        for &(lo, hi) in &self.ranges {
            match merged.last_mut() {
                Some(last) if lo <= last.1 + 1 => last.1 = last.1.max(hi),
                _ => merged.push((lo, hi)),
            }
        }
        self.ranges = merged;
    }

    fn contains(&self, c: u32) -> bool {
        self.ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&c))
    }

    /// Set difference `self - other`, used for `[^...]` (via universe)
    /// and `&&[^...]` intersection-with-complement.
    fn subtract(&self, other: &CharSet) -> CharSet {
        let mut out = CharSet::default();
        for &(lo, hi) in &self.ranges {
            let mut cursor = lo;
            while cursor <= hi {
                if other.contains(cursor) {
                    cursor += 1;
                } else {
                    let mut end = cursor;
                    while end < hi && !other.contains(end + 1) {
                        end += 1;
                    }
                    out.push(cursor, end);
                    cursor = end + 1;
                }
            }
        }
        out.normalize();
        out
    }

    fn intersect(&self, other: &CharSet) -> CharSet {
        self.subtract(&CharSet::universe().subtract(other))
    }

    fn count(&self) -> u64 {
        self.ranges.iter().map(|&(lo, hi)| (hi - lo + 1) as u64).sum()
    }

    fn nth(&self, mut index: u64) -> char {
        for &(lo, hi) in &self.ranges {
            let span = (hi - lo + 1) as u64;
            if index < span {
                return char::from_u32(lo + index as u32).unwrap_or('?');
            }
            index -= span;
        }
        '?'
    }

    fn sample(&self, rng: &mut TestRng) -> char {
        // Bias toward ASCII (3 in 4) when the set spans both, so typical
        // strings look realistic while unicode still appears.
        let ascii = CharSet { ranges: vec![(0x20, 0x7E)] };
        let ascii_part = self.intersect(&ascii);
        let use_ascii = ascii_part.count() > 0 && rng.chance(3, 4);
        let pool = if use_ascii { &ascii_part } else { self };
        let n = pool.count();
        if n == 0 {
            return '?';
        }
        pool.nth(rng.below(n))
    }
}

/// One regex atom plus its repetition bounds (inclusive).
#[derive(Debug, Clone)]
struct Piece {
    set: CharSet,
    min: u32,
    max: u32,
}

/// Parses the supported regex subset. Unsupported syntax degrades to
/// literal characters rather than erroring, since generation (not
/// matching) is the goal.
fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '[' => {
                let (set, next) = parse_class(&chars, i + 1);
                i = next;
                set
            }
            '\\' if i + 1 < chars.len() => {
                let (set, next) = parse_escape(&chars, i + 1);
                i = next;
                set
            }
            c => {
                i += 1;
                let mut s = CharSet::default();
                s.push(c as u32, c as u32);
                s
            }
        };
        let (min, max) = parse_quantifier(&chars, &mut i);
        pieces.push(Piece { set, min, max });
    }
    pieces
}

/// Parses after `\`: `\PC` / `\P{C}` (non-control), `\pL`-ish escapes
/// fall back to the universe; anything else is the literal char.
fn parse_escape(chars: &[char], mut i: usize) -> (CharSet, usize) {
    match chars.get(i) {
        Some('P') | Some('p') => {
            // Skip the category spec: `C` or `{..}`.
            i += 1;
            if chars.get(i) == Some(&'{') {
                while i < chars.len() && chars[i] != '}' {
                    i += 1;
                }
                i += 1;
            } else if i < chars.len() {
                i += 1;
            }
            (CharSet::universe(), i)
        }
        Some(&c) => {
            let mut s = CharSet::default();
            let lit = match c {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                other => other,
            };
            s.push(lit as u32, lit as u32);
            (s, i + 1)
        }
        None => (CharSet::universe(), i),
    }
}

/// Parses a character class body starting just past `[`. Returns the
/// set and the index just past the closing `]`. Supports negation and
/// `&&[class]` intersection.
fn parse_class(chars: &[char], mut i: usize) -> (CharSet, usize) {
    let negated = chars.get(i) == Some(&'^');
    if negated {
        i += 1;
    }
    let mut set = CharSet::default();
    let mut intersections: Vec<CharSet> = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        if chars[i] == '&' && chars.get(i + 1) == Some(&'&') {
            i += 2;
            if chars.get(i) == Some(&'[') {
                let (nested, next) = parse_class(chars, i + 1);
                intersections.push(nested);
                i = next;
            }
            continue;
        }
        let lo = if chars[i] == '\\' && i + 1 < chars.len() {
            i += 2;
            match chars[i - 1] {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                other => other,
            }
        } else {
            i += 1;
            chars[i - 1]
        };
        // Range `a-z` (a trailing `-` is a literal).
        if chars.get(i) == Some(&'-') && chars.get(i + 1).is_some_and(|&c| c != ']') {
            let hi = chars[i + 1];
            i += 2;
            set.push(lo as u32, hi as u32);
        } else {
            set.push(lo as u32, lo as u32);
        }
    }
    i += 1; // consume `]`
    set.normalize();
    let mut result = if negated { CharSet::universe().subtract(&set) } else { set };
    for other in intersections {
        result = result.intersect(&other);
    }
    (result, i)
}

/// Parses an optional quantifier at `chars[*i]`, advancing past it.
fn parse_quantifier(chars: &[char], i: &mut usize) -> (u32, u32) {
    match chars.get(*i) {
        Some('{') => {
            let close = chars[*i..].iter().position(|&c| c == '}').map(|p| *i + p);
            let Some(close) = close else {
                *i += 1;
                return (1, 1);
            };
            let body: String = chars[*i + 1..close].iter().collect();
            *i = close + 1;
            if let Some((lo, hi)) = body.split_once(',') {
                let lo = lo.trim().parse::<u32>().unwrap_or(0);
                let hi = hi.trim().parse::<u32>().unwrap_or(lo.max(8));
                (lo, hi.max(lo))
            } else {
                let n = body.trim().parse::<u32>().unwrap_or(1);
                (n, n)
            }
        }
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        Some('*') => {
            *i += 1;
            (0, 8)
        }
        Some('+') => {
            *i += 1;
            (1, 8)
        }
        _ => (1, 1),
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse_pattern(pattern) {
        let reps = if piece.min == piece.max {
            piece.min
        } else {
            piece.min + rng.below((piece.max - piece.min + 1) as u64) as u32
        };
        for _ in 0..reps {
            out.push(piece.set.sample(rng));
        }
    }
    out
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

/// A printable char from the universe (used by `any::<char>()`).
pub fn printable_char(rng: &mut TestRng) -> char {
    CharSet::universe().sample(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    fn rng() -> TestRng {
        TestRng::for_case("string::tests", 0)
    }

    #[test]
    fn class_with_quantifier() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "[a-z]{2,6}".generate(&mut r);
            assert!((2..=6).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn concatenated_atoms() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "[a-z][a-z0-9]{0,8}".generate(&mut r);
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(s.chars().count() <= 9);
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn printable_escape_excludes_controls() {
        let mut r = rng();
        let mut saw_non_ascii = false;
        for _ in 0..300 {
            let s = "\\PC{0,40}".generate(&mut r);
            assert!(s.chars().count() <= 40);
            assert!(!s.chars().any(|c| c.is_control()), "{s:?}");
            saw_non_ascii |= !s.is_ascii();
        }
        assert!(saw_non_ascii, "unicode should appear occasionally");
    }

    #[test]
    fn intersection_with_negated_class() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[ -~&&[^<>&]]{1,20}".generate(&mut r);
            assert!(!s.is_empty() && s.chars().count() <= 20);
            assert!(
                s.chars().all(|c| (' '..='~').contains(&c) && !"<>&".contains(c)),
                "{s:?}"
            );
        }
    }

    #[test]
    fn space_in_class_and_ranges() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "[a-z0-9 ]{1,12}".generate(&mut r);
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == ' '));
        }
    }

    #[test]
    fn exact_repetition_and_literals() {
        let mut r = rng();
        assert_eq!("a{3}".generate(&mut r), "aaa");
        assert_eq!("abc".generate(&mut r), "abc");
    }
}
