//! Collection strategies: `prop::collection::{vec, btree_set}`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::Range;

/// Length specification accepted by collection strategies: a `usize`
/// (exact), or a half-open `Range<usize>` (as in the real crate).
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.lo + 1 >= self.hi {
            self.lo
        } else {
            rng.range(self.lo, self.hi)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

/// Vectors of values from `element`, with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Ordered sets of values from `element`. The target size is drawn from
/// `size`; duplicates are retried a bounded number of times, so the
/// final set can be smaller than the target (min 1 when `size` requires
/// at least one element), matching the real crate's best-effort filling.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size: size.into() }
}

pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0;
        while set.len() < target && attempts < target * 10 + 10 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    fn rng() -> TestRng {
        TestRng::for_case("collection::tests", 0)
    }

    #[test]
    fn vec_respects_size_range() {
        let s = vec(0u8..10, 2..5);
        let mut r = rng();
        for _ in 0..50 {
            let v = s.generate(&mut r);
            assert!((2..5).contains(&v.len()), "len {}", v.len());
        }
    }

    #[test]
    fn vec_exact_size() {
        let s = vec(Just(1u8), 3usize);
        assert_eq!(s.generate(&mut rng()), vec![1, 1, 1]);
    }

    #[test]
    fn btree_set_caps_duplicates() {
        let s = btree_set(Just(7u8), 1..4);
        let set = s.generate(&mut rng());
        assert_eq!(set.len(), 1);
    }
}
