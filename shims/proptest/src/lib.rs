//! Minimal offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property suites use: the
//! [`Strategy`] trait with `prop_map` / `prop_recursive` / `boxed`,
//! regex-literal string strategies (`"[a-z]{1,8}"` etc.), numeric range
//! strategies, tuple composition, `Just`, `any::<T>()`,
//! `prop::collection::{vec, btree_set}`, the `proptest!` test macro and
//! the `prop_assert*` / `prop_assume!` assertion macros.
//!
//! Design differences from the real crate, deliberate for CI:
//!
//! * **Deterministic by construction.** Every test case's RNG is seeded
//!   from a fixed base (overridable via `PROPTEST_SEED`), the test's
//!   module path + name, and the case index — reruns are bit-identical,
//!   with no persistence files needed. A failure report prints the seed
//!   and case number, which is sufficient to replay.
//! * **No shrinking.** Failing inputs are reported as generated.
//! * **Capped case counts.** Defaults to 32 cases (env `PROPTEST_CASES`
//!   overrides, and `ProptestConfig::with_cases` values are honored but
//!   clamped to 256) so full-workspace `cargo test -q` stays fast.

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Mirrors `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// Mirrors the real prelude's `prop` module alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Declares property tests. Each function is expanded to a `#[test]`
/// (the attribute comes from the user-written meta list) that runs the
/// body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let cases = config.effective_cases();
                let strat = ( $( $strat, )+ );
                let test_path = concat!(module_path!(), "::", stringify!($name));
                for case in 0..cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(test_path, case);
                    let ( $( $arg, )+ ) =
                        $crate::strategy::Strategy::generate(&strat, &mut rng);
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {}/{} (base seed {:#x}): {}",
                                test_path, case, cases,
                                $crate::test_runner::base_seed(), msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(left, right)` with optional context format args.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `left == right`\n  left: {:?}\n right: {:?}", l, r)));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n {}",
                        l, r, format!($($fmt)+))));
        }
    }};
}

/// `prop_assert_ne!(left, right)` with optional context format args.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `left != right`\n  both: {:?}", l)));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `left != right`\n  both: {:?}\n {}",
                        l, format!($($fmt)+))));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniformly picks one of several strategies producing the same value
/// type. Weights (`w => strat`) are accepted and honored.
#[macro_export]
macro_rules! prop_oneof {
    ($( $weight:literal => $strat:expr ),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $( ($weight as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($( $strat:expr ),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}
