//! Minimal offline stand-in for `parking_lot`: mutexes and rwlocks whose
//! `lock()`/`read()`/`write()` return guards directly (no poison `Result`),
//! which is the only API difference from `std::sync` this workspace relies
//! on. Poisoned locks are recovered transparently, matching parking_lot's
//! "no poisoning" semantics.

use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex with parking_lot's panic-free locking API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_locks_without_result() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
