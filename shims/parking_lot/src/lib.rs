//! Minimal offline stand-in for `parking_lot`: mutexes and rwlocks whose
//! `lock()`/`read()`/`write()` return guards directly (no poison `Result`),
//! which is the only API difference from `std::sync` this workspace relies
//! on. Poisoned locks are recovered transparently, matching parking_lot's
//! "no poisoning" semantics.
//!
//! **Debug builds add a lock-order runtime checker** that cross-validates
//! the static `up2p-analyzer` lock-discipline rule: every acquisition is
//! recorded on a per-thread held stack, nested acquisitions feed a global
//! observed-order table keyed by lock *class* (the `with_name` label, or
//! the instance identity for anonymous locks), and the process panics the
//! moment two classes are ever taken in both orders — the ABBA deadlock
//! shape, caught on the first inverted acquisition rather than the first
//! actual deadlock. An optional declared order
//! ([`lock_order::declare_order`]) is asserted eagerly: acquiring a
//! class listed *earlier* than one already held panics even before an
//! inversion is observed. Release builds compile all of this away.

use std::sync::{self, PoisonError};

pub use lock_order::{declare_order, observed_pairs, reset as reset_lock_order};

/// Lock-order tracking: per-thread held stacks, the global observed-pair
/// table and the optional declared order. Active in debug builds only.
pub mod lock_order {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex as StdMutex, OnceLock, PoisonError};

    /// Identity of a lock for ordering purposes: its declared class name,
    /// or the anonymous instance id.
    #[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
    pub(crate) enum LockKey {
        Named(&'static str),
        Anon(u64),
    }

    impl std::fmt::Display for LockKey {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                LockKey::Named(n) => write!(f, "{n}"),
                LockKey::Anon(id) => write!(f, "<anonymous lock #{id}>"),
            }
        }
    }

    pub(crate) static NEXT_ID: AtomicU64 = AtomicU64::new(1);

    /// A monotonically increasing token per acquisition, so guards can be
    /// released out of LIFO order.
    static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

    struct OrderState {
        /// Directed pairs `(held, acquired)` ever observed, with the
        /// thread name that first observed them.
        observed: HashMap<(LockKey, LockKey), String>,
        /// Declared total order of class names, earliest first.
        declared: Vec<&'static str>,
    }

    fn state() -> &'static StdMutex<OrderState> {
        static STATE: OnceLock<StdMutex<OrderState>> = OnceLock::new();
        STATE.get_or_init(|| {
            StdMutex::new(OrderState { observed: HashMap::new(), declared: Vec::new() })
        })
    }

    thread_local! {
        static HELD: std::cell::RefCell<Vec<(LockKey, u64)>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }

    /// Declares the allowed acquisition order of named lock classes,
    /// earliest first. Acquiring a listed class while holding one that
    /// appears later in the list panics (debug builds). Replaces any
    /// previous declaration.
    pub fn declare_order(classes: &[&'static str]) {
        let mut s = state().lock().unwrap_or_else(PoisonError::into_inner);
        s.declared = classes.to_vec();
    }

    /// Clears observed pairs and the declared order (test isolation).
    pub fn reset() {
        let mut s = state().lock().unwrap_or_else(PoisonError::into_inner);
        s.observed.clear();
        s.declared.clear();
    }

    /// Every `(held, acquired)` class pair observed so far, rendered as
    /// strings, sorted. Debug builds only; empty in release builds.
    pub fn observed_pairs() -> Vec<(String, String)> {
        let s = state().lock().unwrap_or_else(PoisonError::into_inner);
        let mut v: Vec<(String, String)> =
            s.observed.keys().map(|(a, b)| (a.to_string(), b.to_string())).collect();
        v.sort();
        v
    }

    /// Records an acquisition, asserting order discipline. Returns the
    /// release token.
    pub(crate) fn acquired(key: &LockKey) -> u64 {
        let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
        let held_snapshot: Vec<LockKey> =
            HELD.with(|h| h.borrow().iter().map(|(k, _)| k.clone()).collect());
        if !held_snapshot.is_empty() {
            let thread = std::thread::current().name().unwrap_or("<unnamed>").to_string();
            // decide violations while holding the registry lock, panic after
            let mut violation: Option<String> = None;
            {
                let mut s = state().lock().unwrap_or_else(PoisonError::into_inner);
                for h in &held_snapshot {
                    if h == key {
                        violation = Some(format!(
                            "lock-order violation: nested acquisition of lock class \
                             `{key}` (no intra-class order exists)"
                        ));
                        break;
                    }
                    // declared order: earlier classes must be taken first
                    if let (LockKey::Named(held_name), LockKey::Named(new_name)) = (h, key) {
                        let pos = |n: &str| s.declared.iter().position(|d| *d == n);
                        if let (Some(hp), Some(np)) = (pos(held_name), pos(new_name)) {
                            if np < hp {
                                violation = Some(format!(
                                    "lock-order violation: `{new_name}` acquired while \
                                     `{held_name}` is held, but the declared order is \
                                     {:?}",
                                    s.declared
                                ));
                                break;
                            }
                        }
                    }
                    // dynamic inversion: has the reverse pair ever happened?
                    if let Some(first_thread) =
                        s.observed.get(&(key.clone(), h.clone())).cloned()
                    {
                        violation = Some(format!(
                            "lock-order inversion: this thread acquires `{key}` while \
                             holding `{h}`, but thread `{first_thread}` previously \
                             acquired `{h}` while holding `{key}` — ABBA deadlock shape"
                        ));
                        break;
                    }
                    s.observed.entry((h.clone(), key.clone())).or_insert_with(|| thread.clone());
                }
            }
            if let Some(message) = violation {
                panic!("{message}");
            }
        }
        HELD.with(|h| h.borrow_mut().push((key.clone(), token)));
        token
    }

    /// Records a release by token (guards may drop in any order).
    pub(crate) fn released(token: u64) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|(_, t)| *t == token) {
                held.remove(pos);
            }
        });
    }
}

#[cfg(debug_assertions)]
use lock_order::LockKey;

/// Tracking payload of an instrumented lock: its class key in debug
/// builds, nothing in release builds.
#[derive(Debug)]
struct Tracking {
    #[cfg(debug_assertions)]
    key: LockKey,
}

impl Tracking {
    fn new(_name: Option<&'static str>) -> Tracking {
        Tracking {
            #[cfg(debug_assertions)]
            key: match _name {
                Some(n) => LockKey::Named(n),
                None => LockKey::Anon(
                    lock_order::NEXT_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
                ),
            },
        }
    }

    fn acquired(&self) -> ReleaseToken {
        ReleaseToken {
            #[cfg(debug_assertions)]
            token: lock_order::acquired(&self.key),
        }
    }
}

/// Pops the acquisition record when the guard drops.
#[derive(Debug)]
struct ReleaseToken {
    #[cfg(debug_assertions)]
    token: u64,
}

impl Drop for ReleaseToken {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        lock_order::released(self.token);
    }
}

/// A mutex with parking_lot's panic-free locking API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    tracking: Tracking,
    inner: sync::Mutex<T>,
}

impl Default for Tracking {
    fn default() -> Tracking {
        Tracking::new(None)
    }
}

/// RAII guard for [`Mutex::lock`]; releases the lock (and its order-
/// tracking record) on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
    _release: ReleaseToken,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex { tracking: Tracking::new(None), inner: sync::Mutex::new(value) }
    }

    /// A mutex carrying a lock-class name for the debug-build order
    /// checker: all locks sharing a name form one class in the order
    /// graph, mirroring how the static analyzer classes guards by
    /// receiver field name.
    pub fn with_name(name: &'static str, value: T) -> Mutex<T> {
        Mutex { tracking: Tracking::new(Some(name)), inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner, _release: self.tracking.acquired() }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g, _release: self.tracking.acquired() }),
            Err(sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: p.into_inner(), _release: self.tracking.acquired() })
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    tracking: Tracking,
    inner: sync::RwLock<T>,
}

/// RAII guard for [`RwLock::read`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
    _release: ReleaseToken,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII guard for [`RwLock::write`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
    _release: ReleaseToken,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock { tracking: Tracking::new(None), inner: sync::RwLock::new(value) }
    }

    /// An rwlock carrying a lock-class name for the debug-build order
    /// checker. Read and write acquisitions count the same for ordering.
    pub fn with_name(name: &'static str, value: T) -> RwLock<T> {
        RwLock { tracking: Tracking::new(Some(name)), inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        RwLockReadGuard { inner, _release: self.tracking.acquired() }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        RwLockWriteGuard { inner, _release: self.tracking.acquired() }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Mutex as StdMutex;

    /// The order registry is process-global; serialize the tests that
    /// depend on it so `reset()` calls don't race.
    fn registry_guard() -> std::sync::MutexGuard<'static, ()> {
        static GATE: StdMutex<()> = StdMutex::new(());
        GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn mutex_locks_without_result() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn consistent_nesting_is_recorded_not_punished() {
        let _g = registry_guard();
        lock_order::reset();
        let a = Mutex::with_name("test.consistent.a", 1);
        let b = Mutex::with_name("test.consistent.b", 2);
        for _ in 0..2 {
            let ga = a.lock();
            let gb = b.lock();
            assert_eq!(*ga + *gb, 3);
        }
        let pairs = observed_pairs();
        assert!(pairs
            .iter()
            .any(|(f, t)| f == "test.consistent.a" && t == "test.consistent.b"));
        lock_order::reset();
    }

    #[test]
    fn inversion_panics_in_debug_builds() {
        let _g = registry_guard();
        lock_order::reset();
        let a = Mutex::with_name("test.inv.a", ());
        let b = Mutex::with_name("test.inv.b", ());
        {
            let _ga = a.lock();
            let _gb = b.lock(); // records a → b
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _gb = b.lock();
            let _ga = a.lock(); // b → a: inversion
        }));
        if cfg!(debug_assertions) {
            let err = result.expect_err("inverted order must panic in debug builds");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("inversion"), "unexpected panic message: {msg}");
        } else {
            assert!(result.is_ok());
        }
        lock_order::reset();
    }

    #[test]
    fn declared_order_is_asserted_eagerly() {
        let _g = registry_guard();
        lock_order::reset();
        declare_order(&["test.decl.first", "test.decl.second"]);
        let first = Mutex::with_name("test.decl.first", ());
        let second = RwLock::with_name("test.decl.second", ());
        {
            // declared direction: fine, and no prior observation needed
            let _a = first.lock();
            let _b = second.write();
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _b = second.read();
            let _a = first.lock(); // violates the declared order
        }));
        if cfg!(debug_assertions) {
            let err = result.expect_err("declared-order violation must panic");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("declared order"), "unexpected panic message: {msg}");
        } else {
            assert!(result.is_ok());
        }
        lock_order::reset();
    }

    #[test]
    fn out_of_order_guard_drops_are_fine() {
        let _g = registry_guard();
        lock_order::reset();
        let a = Mutex::with_name("test.drops.a", ());
        let b = Mutex::with_name("test.drops.b", ());
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // release the outer guard first
        drop(gb);
        // b is no longer held, so this is not an inversion of a live guard
        let _gb = b.lock();
        lock_order::reset();
    }

    #[test]
    fn anonymous_locks_do_not_collide_as_a_class() {
        let _g = registry_guard();
        lock_order::reset();
        let a = Mutex::new(());
        let b = Mutex::new(());
        let ga = a.lock();
        let gb = b.lock(); // distinct anonymous identities: no violation
        drop(gb);
        drop(ga);
        lock_order::reset();
    }
}
