//! Minimal offline stand-in for `criterion`: enough of the API for
//! `harness = false` bench targets to compile and produce useful
//! wall-clock numbers. Each benchmark is warmed up briefly, then timed
//! over an adaptive iteration count; median ns/iter is printed in a
//! criterion-like one-line format. Statistical analysis, plotting and
//! HTML reports are out of scope.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How long each benchmark spends measuring (after a short warm-up).
const MEASURE_TIME: Duration = Duration::from_millis(300);
const WARMUP_TIME: Duration = Duration::from_millis(100);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    /// When true (cargo passes `--test` to bench targets under
    /// `cargo test --benches`), run each body once and skip timing.
    test_mode: bool,
}

impl Criterion {
    /// Mirrors the real crate's CLI entry point. Recognises the flags
    /// cargo's bench/test harness protocol passes; ignores filters.
    pub fn configure_from_args(mut self) -> Criterion {
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                self.test_mode = true;
            }
        }
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        run_one(self.test_mode, &name.into(), &mut f);
        self
    }

    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_one(self.criterion.test_mode, &label, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_one(self.criterion.test_mode, &label, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Conversion accepted anywhere the real crate takes `id: impl Into<...>`.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Passed to the benchmark closure; `iter` does the timing.
pub struct Bencher {
    test_mode: bool,
    /// Median ns per iteration, filled in by `iter`.
    result_ns: f64,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm up and estimate a per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_TIME {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        // Time several batches and keep the median batch.
        let batch: u64 = ((MEASURE_TIME.as_secs_f64() / 5.0 / per_iter.max(1e-9)) as u64).max(1);
        let mut samples = Vec::with_capacity(5);
        for _ in 0..5 {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(start.elapsed().as_secs_f64() / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = samples[samples.len() / 2] * 1e9;
    }
}

fn run_one(test_mode: bool, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { test_mode, result_ns: 0.0 };
    f(&mut b);
    if test_mode {
        println!("test {label} ... ok");
    } else if b.result_ns >= 1e6 {
        println!("{label:<50} time: [{:.3} ms/iter]", b.result_ns / 1e6);
    } else if b.result_ns >= 1e3 {
        println!("{label:<50} time: [{:.3} us/iter]", b.result_ns / 1e3);
    } else {
        println!("{label:<50} time: [{:.1} ns/iter]", b.result_ns);
    }
}

/// Declares a group of benchmark functions, mirroring the real macro's
/// simple form and the `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Expands to `fn main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_in_test_mode() {
        let mut c = Criterion { test_mode: true };
        let mut calls = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| calls += 1);
        });
        assert_eq!(calls, 1);
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &n| b.iter(|| black_box(n)));
        g.finish();
    }
}
