//! Minimal offline stand-in for the `rand` crate: `Rng`, `SeedableRng`
//! and a deterministic `rngs::StdRng` (xoshiro256++ seeded via
//! SplitMix64). Stream values differ from the real crate's StdRng, but
//! every consumer in this workspace only relies on *determinism given a
//! seed*, which this implementation guarantees across runs and platforms.

use std::ops::Range;

/// Low-level 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Types samplable uniformly over their full domain (`rng.gen()`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {
        $(impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types samplable uniformly from a half-open range (`rng.gen_range(a..b)`).
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {
        $(impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let v = u128::sample_standard(rng) % span;
                (range.start as i128 + v as i128) as $t
            }
        })*
    };
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        range.start + (range.end - range.start) * u
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let u = f32::sample_standard(rng);
        range.start + (range.end - range.start) * u
    }
}

/// High-level sampling interface, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (not stream-compatible with
    /// the real crate's StdRng, but stable across runs and platforms).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let neg = rng.gen_range(-5i64..-1);
            assert!((-5..-1).contains(&neg));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
