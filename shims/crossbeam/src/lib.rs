//! Minimal offline stand-in for `crossbeam`: the `channel` module's
//! unbounded MPSC subset, delegating to `std::sync::mpsc`. The workspace
//! never clones receivers or uses `select!`, so std's single-consumer
//! channel covers the full surface in use.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg)
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }

        pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
            self.inner.try_iter()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_and_timeout() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            assert_eq!(rx.recv().unwrap(), 7);
            assert!(rx.recv_timeout(Duration::from_millis(1)).is_err());
            let tx2 = tx.clone();
            tx2.send(8).unwrap();
            drop((tx, tx2));
            assert_eq!(rx.recv().unwrap(), 8);
            assert!(rx.recv().is_err());
        }
    }
}
