//! Minimal offline stand-in for the `bytes` crate: the subset of the
//! [`Bytes`] API this workspace uses. Backed by `Arc<[u8]>`, so clones
//! are cheap and the buffer is immutable, matching the real crate's
//! semantics for the operations exposed here.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable chunk of contiguous memory.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Creates `Bytes` from a static slice (zero-copy in the real crate;
    /// one copy here, which callers cannot observe).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes { data: Arc::from(bytes) }
    }

    /// Copies a slice into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: Arc::from(data) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the buffer out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::from(v.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (b' '..=b'~').contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_compares() {
        let a = Bytes::from(&b"hello"[..]);
        let b = Bytes::from_static(b"hello");
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert_eq!(&a[..], b"hello");
        assert_eq!(a.to_vec(), b"hello".to_vec());
        let c = a.clone();
        assert_eq!(c, a);
        assert!(!format!("{a:?}").is_empty());
    }
}
